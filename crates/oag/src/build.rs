//! OAG construction (preprocessing).
//!
//! For every element `a` of the chosen side, the builder walks the two-hop
//! bipartite neighborhood (`a -> shared opposite element -> b`) counting how
//! many opposite-side elements each candidate `b` shares with `a`. Pairs with
//! count `>= W_min` become OAG edges. This is the hypergraph preprocessing
//! the paper amortizes across algorithm executions (§IV-A, Fig. 21).

use crate::Oag;
use hypergraph::epoch::EpochCounters;
use hypergraph::{Hypergraph, Side};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Configuration of OAG construction.
///
/// ```
/// use hypergraph::Side;
/// use oag::OagConfig;
/// let g = hypergraph::fig1_example();
/// let oag = OagConfig::new().with_w_min(2).build(&g, Side::Hyperedge);
/// assert_eq!(oag.weight(1, 2), None); // weight-1 edge filtered out
/// assert_eq!(oag.weight(0, 2), Some(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct OagConfig {
    /// Minimum overlap weight for an edge to be kept. The paper empirically
    /// sets 3 (§IV-A); correctness never depends on this value.
    pub w_min: u32,
    /// Pivot-degree cap: opposite-side elements incident to more than this
    /// many `side` elements are skipped during two-hop counting. Such hubs
    /// connect nearly everything to nearly everything with near-uniform
    /// weight, exploding preprocessing cost while adding little locality
    /// signal; skipping them only drops OAG edges, which (like `W_min`)
    /// cannot affect correctness. `u32::MAX` disables the cap.
    pub max_pivot_degree: u32,
    /// Maximum OAG degree kept per element (highest-weight edges win).
    /// Bounds both OAG storage and the hardware's neighbor-scan work.
    pub max_degree: u32,
}

impl OagConfig {
    /// Paper defaults: `W_min = 3`, pivot cap 256, degree cap 16.
    pub fn new() -> Self {
        OagConfig { w_min: 3, max_pivot_degree: 256, max_degree: 16 }
    }

    /// Sets `W_min` (minimum 1).
    pub fn with_w_min(mut self, w_min: u32) -> Self {
        self.w_min = w_min.max(1);
        self
    }

    /// Sets the pivot-degree cap.
    pub fn with_max_pivot_degree(mut self, cap: u32) -> Self {
        self.max_pivot_degree = cap.max(1);
        self
    }

    /// Sets the per-element OAG degree cap.
    pub fn with_max_degree(mut self, cap: u32) -> Self {
        self.max_degree = cap.max(1);
        self
    }

    /// Builds the OAG for `side` elements of `g`.
    pub fn build(&self, g: &Hypergraph, side: Side) -> Oag {
        self.build_with_stats(g, side).0
    }

    /// Builds the OAG and reports preprocessing statistics (Fig. 21).
    pub fn build_with_stats(&self, g: &Hypergraph, side: Side) -> (Oag, OagBuildStats) {
        self.build_with_stats_threads(g, side, 1)
    }

    /// Builds the OAG across `threads` worker threads.
    ///
    /// The result is **bit-identical** to the serial build for any thread
    /// count: each row of the OAG depends only on its own source element, so
    /// the source range is split into contiguous spans, every span is counted
    /// with private scratch buffers, and the spans are concatenated back in
    /// index order. The descending-weight / ascending-id row order (the
    /// storage contract of the hardware's neighbor-selection stage) is
    /// established per row and therefore unaffected by the split.
    pub fn build_threads(&self, g: &Hypergraph, side: Side, threads: usize) -> Oag {
        self.build_with_stats_threads(g, side, threads).0
    }

    /// Builds the OAG and statistics across `threads` worker threads (see
    /// [`build_threads`](Self::build_threads) for the determinism contract).
    pub fn build_with_stats_threads(
        &self,
        g: &Hypergraph,
        side: Side,
        threads: usize,
    ) -> (Oag, OagBuildStats) {
        let n = g.num_on(side);
        let threads = threads.max(1).min(n.max(1));
        if threads == 1 {
            // Serial fast path: rows stream straight into the final CSR
            // arrays, skipping the per-span staging buffers and their
            // merge copy entirely.
            return self.build_serial(g, side, 0);
        }
        let spans: Vec<Range<u32>> = {
            let per = n.div_ceil(threads);
            (0..threads)
                .map(|t| {
                    let lo = (t * per).min(n) as u32;
                    let hi = ((t + 1) * per).min(n) as u32;
                    lo..hi
                })
                .collect()
        };
        let parts: Vec<SpanRows> = std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .into_iter()
                .map(|s| scope.spawn(move || self.count_span(g, side, s)))
                .collect();
            // invariant: count_rows is pure arithmetic over a
            // validated graph; a panic there is a bug, and silently
            // dropping a span would corrupt the merged OAG, so the
            // panic is re-propagated rather than recovered.
            handles.into_iter().map(|h| h.join().expect("OAG span worker panicked")).collect()
        });

        // Merge spans in index order: offsets by prefix sum, edge/weight
        // arrays by concatenation, statistics by field-wise summation.
        let mut stats = OagBuildStats::default();
        let total: usize = parts.iter().map(|p| p.edges.len()).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut edges = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        let mut running = 0u64;
        for part in parts {
            for len in part.row_lens {
                running += len as u64;
                // invariant: node ids are u32 and max_degree caps edges
                // per node, so the total edge count fits u32 by
                // construction.
                offsets.push(u32::try_from(running).expect("OAG edge count fits u32"));
            }
            edges.extend_from_slice(&part.edges);
            weights.extend_from_slice(&part.weights);
            stats.two_hop_steps += part.stats.two_hop_steps;
            stats.pairs_considered += part.stats.pairs_considered;
            stats.edges_kept += part.stats.edges_kept;
            stats.pivots_skipped += part.stats.pivots_skipped;
        }
        let oag = Oag::from_parts(side, self.w_min, offsets, edges, weights);
        stats.size_bytes = oag.size_bytes();
        (oag, stats)
    }

    /// Two-hop counting over a contiguous span of source elements, handing
    /// each finished `(neighbor, weight)` row — already degree-capped and
    /// in descending-weight / ascending-id order — to `emit`. All scratch —
    /// the epoch-tagged counter, the touched list, and the per-row
    /// candidate buffer — is allocated once and reused across rows; the
    /// counter is "cleared" between rows by an epoch bump
    /// ([`EpochCounters::begin`]) instead of per-slot zeroing stores, and
    /// the degree cap uses a bounded top-k selection rather than a
    /// full-row sort. `initial_epoch` parks the epoch counter for the
    /// wraparound tests; production paths pass 0 (ignored).
    fn count_rows(
        &self,
        g: &Hypergraph,
        side: Side,
        span: Range<u32>,
        initial_epoch: u32,
        mut emit: impl FnMut(&[(u32, u32)]),
    ) -> OagBuildStats {
        let n = g.num_on(side);
        let mut stats = OagBuildStats::default();

        // Dense per-row counter: counts.get(b) = overlap weight with the
        // pivot row; `touched` remembers which slots to drain.
        let mut counts = EpochCounters::new();
        counts.begin(n);
        if initial_epoch != 0 {
            counts.force_epoch(initial_epoch);
        }
        let mut touched: Vec<u32> = Vec::new();
        let mut row: Vec<(u32, u32)> = Vec::new(); // (neighbor, weight)
        let cap = self.max_degree as usize;
        // Descending weight, ascending id on ties — the storage order the
        // hardware's neighbor-selection stage relies on. A total order
        // (ids are unique per row), so top-k selection + sort of the k
        // survivors yields exactly the full sort's prefix.
        let order = |x: &(u32, u32), y: &(u32, u32)| y.1.cmp(&x.1).then(x.0.cmp(&y.0));

        for a in span {
            counts.begin(n);
            for &mid in g.incidence(side, a) {
                let pivot_deg = g.degree(side.opposite(), mid);
                if pivot_deg as u64 > self.max_pivot_degree as u64 {
                    stats.pivots_skipped += 1;
                    continue;
                }
                for &b in g.incidence(side.opposite(), mid) {
                    stats.two_hop_steps += 1;
                    if b == a {
                        continue;
                    }
                    if counts.add(b as usize) == 1 {
                        touched.push(b);
                    }
                }
            }
            row.clear();
            for b in touched.drain(..) {
                let w = counts.get(b as usize);
                stats.pairs_considered += 1;
                if w >= self.w_min {
                    row.push((b, w));
                }
            }
            if row.len() > cap {
                // Bounded top-k: partition the k heaviest candidates to the
                // front, then sort only those k.
                row.select_nth_unstable_by(cap, order);
                row.truncate(cap);
            }
            row.sort_unstable_by(order);
            stats.edges_kept += row.len();
            emit(&row);
        }
        stats
    }

    /// [`count_rows`](Self::count_rows) staged into per-span buffers for
    /// the threaded build's index-order merge.
    fn count_span(&self, g: &Hypergraph, side: Side, span: Range<u32>) -> SpanRows {
        let mut out = SpanRows {
            row_lens: Vec::with_capacity(span.len()),
            edges: Vec::new(),
            weights: Vec::new(),
            stats: OagBuildStats::default(),
        };
        out.stats = self.count_rows(g, side, span, 0, |row| {
            out.row_lens.push(row.len() as u32);
            for &(b, w) in row {
                out.edges.push(b);
                out.weights.push(w);
            }
        });
        out
    }

    /// The serial build: rows stream directly into the final CSR arrays
    /// with no intermediate staging. `initial_epoch` as in
    /// [`count_rows`](Self::count_rows).
    fn build_serial(&self, g: &Hypergraph, side: Side, initial_epoch: u32) -> (Oag, OagBuildStats) {
        let n = g.num_on(side);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut edges: Vec<u32> = Vec::new();
        let mut weights: Vec<u32> = Vec::new();
        let mut running = 0u64;
        let mut stats = self.count_rows(g, side, 0..n as u32, initial_epoch, |row| {
            running += row.len() as u64;
            // invariant: node ids are u32 and max_degree caps edges per
            // node, so the total edge count fits u32 by construction.
            offsets.push(u32::try_from(running).expect("OAG edge count fits u32"));
            for &(b, w) in row {
                edges.push(b);
                weights.push(w);
            }
        });
        let oag = Oag::from_parts(side, self.w_min, offsets, edges, weights);
        stats.size_bytes = oag.size_bytes();
        (oag, stats)
    }

    /// [`build_with_stats`](Self::build_with_stats) with the counting
    /// scratch's epoch counter parked at `epoch` before the first row —
    /// wraparound-coverage support: the identity tests start just below
    /// `u32::MAX` and prove the output matches the reference kernel across
    /// the wrap. Serial only; compiled for tests and the
    /// `reference-kernels` feature.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn build_with_stats_at_epoch(
        &self,
        g: &Hypergraph,
        side: Side,
        epoch: u32,
    ) -> (Oag, OagBuildStats) {
        self.build_serial(g, side, epoch.max(1))
    }
}

/// Rows produced for one contiguous span of source elements.
struct SpanRows {
    row_lens: Vec<u32>,
    edges: Vec<u32>,
    weights: Vec<u32>,
    stats: OagBuildStats,
}

impl Default for OagConfig {
    fn default() -> Self {
        OagConfig::new()
    }
}

/// Preprocessing statistics of one OAG build, feeding the Fig. 21
/// preprocessing-overhead experiment.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct OagBuildStats {
    /// Bipartite two-hop traversal steps performed (the dominant cost).
    pub two_hop_steps: u64,
    /// Distinct candidate pairs examined against `W_min`.
    pub pairs_considered: u64,
    /// Directed edge entries kept in the OAG.
    pub edges_kept: usize,
    /// Pivot expansions skipped by the pivot-degree cap.
    pub pivots_skipped: u64,
    /// Final OAG size in bytes.
    pub size_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{fig1_example, generate::GeneratorConfig};

    #[test]
    fn symmetric_weights() {
        let g = GeneratorConfig::new(400, 300).with_seed(21).generate();
        let oag =
            OagConfig::new().with_w_min(1).with_max_degree(u32::MAX).build(&g, Side::Hyperedge);
        for a in 0..oag.len() as u32 {
            for (&b, &w) in oag.neighbors(a).iter().zip(oag.weights_of(a)) {
                assert_eq!(oag.weight(b, a), Some(w), "edge ({a},{b}) not symmetric");
            }
        }
    }

    #[test]
    fn matches_naive_reference_on_small_inputs() {
        let g = GeneratorConfig::new(120, 80).with_seed(33).generate();
        let oag =
            OagConfig::new().with_w_min(2).with_max_degree(u32::MAX).build(&g, Side::Hyperedge);
        // Naive O(|H|^2) intersection counting.
        for a in 0..g.num_hyperedges() as u32 {
            for b in 0..g.num_hyperedges() as u32 {
                if a == b {
                    continue;
                }
                let sa = g.incidence(Side::Hyperedge, a);
                let sb = g.incidence(Side::Hyperedge, b);
                let w = sa.iter().filter(|v| sb.contains(v)).count() as u32;
                if w >= 2 {
                    assert_eq!(oag.weight(a, b), Some(w), "({a},{b})");
                } else {
                    assert_eq!(oag.weight(a, b), None, "({a},{b})");
                }
            }
        }
    }

    #[test]
    fn w_min_filters_edges() {
        let g = fig1_example();
        let all = OagConfig::new().with_w_min(1).build(&g, Side::Hyperedge);
        let filtered = OagConfig::new().with_w_min(2).build(&g, Side::Hyperedge);
        assert_eq!(all.num_edge_entries(), 6);
        assert_eq!(filtered.num_edge_entries(), 4); // (h1,h2) w=1 dropped both ways
        let heavy = OagConfig::new().with_w_min(3).build(&g, Side::Hyperedge);
        assert_eq!(heavy.num_edge_entries(), 0);
    }

    #[test]
    fn vertex_side_oag() {
        let g = fig1_example();
        let oag = OagConfig::new().with_w_min(1).build(&g, Side::Vertex);
        assert_eq!(oag.len(), 7);
        // v0 and v4 are both in h0 and h2: weight 2.
        assert_eq!(oag.weight(0, 4), Some(2));
        // v0 and v6 share only h0.
        assert_eq!(oag.weight(0, 6), Some(1));
        // v0 and v1 share nothing.
        assert_eq!(oag.weight(0, 1), None);
    }

    #[test]
    fn degree_cap_keeps_heaviest() {
        let g = GeneratorConfig::new(300, 400).with_seed(5).generate();
        let full =
            OagConfig::new().with_w_min(1).with_max_degree(u32::MAX).build(&g, Side::Hyperedge);
        let capped = OagConfig::new().with_w_min(1).with_max_degree(2).build(&g, Side::Hyperedge);
        for a in 0..capped.len() as u32 {
            assert!(capped.degree(a) <= 2);
            if capped.degree(a) == 2 {
                // The kept edges must be at least as heavy as any dropped one.
                let kept_min = *capped.weights_of(a).iter().min().unwrap();
                let full_max_dropped = full
                    .weights_of(a)
                    .iter()
                    .zip(full.neighbors(a))
                    .filter(|&(_, n)| !capped.neighbors(a).contains(n))
                    .map(|(w, _)| *w)
                    .max()
                    .unwrap_or(0);
                assert!(kept_min >= full_max_dropped);
            }
        }
    }

    #[test]
    fn pivot_cap_reduces_work() {
        let g = GeneratorConfig::new(500, 800).with_seed(77).generate();
        let (_, full) =
            OagConfig::new().with_max_pivot_degree(u32::MAX).build_with_stats(&g, Side::Hyperedge);
        let (_, capped) =
            OagConfig::new().with_max_pivot_degree(8).build_with_stats(&g, Side::Hyperedge);
        assert!(capped.two_hop_steps < full.two_hop_steps);
        assert!(capped.pivots_skipped > 0);
        assert_eq!(full.pivots_skipped, 0);
    }

    #[test]
    fn optimized_build_matches_reference_kernel() {
        for (seed, w_min, max_deg, pivot_cap) in [
            (21u64, 1u32, u32::MAX, u32::MAX),
            (33, 2, 16, 256),
            (5, 3, 4, 8),
            (77, 1, 2, u32::MAX),
        ] {
            let g = GeneratorConfig::new(400, 300).with_seed(seed).generate();
            let cfg = OagConfig::new()
                .with_w_min(w_min)
                .with_max_degree(max_deg)
                .with_max_pivot_degree(pivot_cap);
            for side in [Side::Hyperedge, Side::Vertex] {
                let (opt, opt_stats) = cfg.build_with_stats(&g, side);
                let (reference, ref_stats) = crate::reference::build_with_stats(&cfg, &g, side);
                assert_eq!(opt, reference, "seed {seed} {side:?}");
                assert_eq!(opt_stats, ref_stats, "seed {seed} {side:?}");
            }
        }
    }

    #[test]
    fn epoch_wraparound_does_not_corrupt_counts() {
        let g = GeneratorConfig::new(300, 200).with_seed(13).generate();
        let cfg = OagConfig::new().with_w_min(1).with_max_degree(8);
        let (reference, ref_stats) = crate::reference::build_with_stats(&cfg, &g, Side::Hyperedge);
        // Park the epoch counter so it wraps mid-build (one bump per row,
        // 200 rows, wrap forced within the first few).
        for start in [u32::MAX - 3, u32::MAX - 100, u32::MAX] {
            let (opt, opt_stats) = cfg.build_with_stats_at_epoch(&g, Side::Hyperedge, start);
            assert_eq!(opt, reference, "start epoch {start}");
            assert_eq!(opt_stats, ref_stats, "start epoch {start}");
        }
    }

    #[test]
    fn stats_report_size() {
        let g = fig1_example();
        let (oag, stats) = OagConfig::new().with_w_min(1).build_with_stats(&g, Side::Hyperedge);
        assert_eq!(stats.size_bytes, oag.size_bytes());
        assert_eq!(stats.edges_kept, oag.num_edge_entries());
        assert!(stats.two_hop_steps > 0);
    }
}
