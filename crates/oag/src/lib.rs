#![warn(missing_docs)]

//! Overlap-aware abstraction graph (OAG) and chain generation.
//!
//! This crate implements §IV of the ChGraph paper:
//!
//! - the **OAG** (Definition 1): a weighted undirected graph with one vertex
//!   per hyperedge (or per vertex), an edge between two elements iff they are
//!   *overlapped*, and edge weight `|N(a) ∩ N(b)|`. Edges with weight below
//!   a user threshold `W_min` are discarded — a space/locality trade-off
//!   that never affects correctness, because elements that lose their overlap
//!   information are simply scheduled in index order;
//! - the **chain** (Definition 2): a sequence of connected OAG vertices, and
//!   the chain-generation procedure (Algorithm 3): a greedy,
//!   maximal-weight-successor walk bounded by a maximum exploration depth
//!   `D_max`, seeded from the minimum-index active element. This is exactly
//!   the walk the hardware chain generator of §V-B performs with its
//!   16-deep stack.
//!
//! Chain generation accepts a [`ChainObserver`] so the architectural
//! simulator can charge every bitmap scan, offset fetch and edge scan to the
//! simulated memory hierarchy without duplicating the algorithm.
//!
//! # Example
//!
//! ```
//! use hypergraph::{Side, Frontier};
//! use oag::{OagConfig, ChainConfig, generate_chains};
//!
//! let g = hypergraph::fig1_example();
//! let oag = OagConfig::new().with_w_min(1).build(&g, Side::Hyperedge);
//! let frontier = Frontier::full(g.num_hyperedges());
//! let chains = generate_chains(&oag, &frontier, 0..4, &ChainConfig::default());
//! // The paper's chain rooted at h0: <h0, h2, h1, h3>.
//! assert_eq!(chains.chain(0), &[0, 2, 1, 3]);
//! ```

mod build;
mod chain;
mod generate;
mod graph;
pub mod io;
pub mod quality;
#[cfg(any(test, feature = "reference-kernels"))]
pub mod reference;

pub use build::{OagBuildStats, OagConfig};
pub use chain::ChainSet;
pub use generate::{
    generate_chains, generate_chains_observed, generate_chains_observed_with_scratch,
    generate_chains_with_scratch, ChainConfig, ChainObserver, ChainScratch, NoopObserver,
};
pub use graph::Oag;
pub use hypergraph::ValidationError;
