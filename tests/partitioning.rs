//! Overlap-aware partitioning composed with chain generation: the paper's
//! remark that GLA is "compatible and flexible with other partitioning
//! methods" (SIV-B), demonstrated end to end.

use hypergraph::chunk::partition as chunked;
use hypergraph::generate::GeneratorConfig;
use hypergraph::partition::{apply_hyperedge_partition, co_location_rate, streaming_partition};
use hypergraph::{Frontier, Hypergraph, Side};
use oag::{generate_chains, ChainConfig, OagConfig};

/// A family-structured input with all id locality destroyed, so contiguous
/// chunking is blind to families — the case partitioners exist for.
fn shuffled_families() -> Hypergraph {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let g = GeneratorConfig::new(6_000, 3_000)
        .with_seed(17)
        .with_family_range(6, 48)
        .with_member_prob(0.85)
        .generate();
    let mut rng = SmallRng::seed_from_u64(99);
    let mut order: Vec<u32> = (0..g.num_hyperedges() as u32).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut b = hypergraph::HypergraphBuilder::new(g.num_vertices());
    for &h in &order {
        b.add_hyperedge(
            g.incidence(Side::Hyperedge, h).iter().map(|&v| hypergraph::VertexId::new(v)),
        )
        .expect("copied hyperedges are valid");
    }
    b.build()
}

fn element_weighted_chain_len(g: &Hypergraph, num_chunks: usize) -> f64 {
    let oag = OagConfig::new().build(g, Side::Hyperedge);
    let chunks = chunked(g, Side::Hyperedge, num_chunks);
    let frontier = Frontier::full(g.num_hyperedges());
    let mut elements = 0usize;
    let mut weighted = 0usize;
    for c in &chunks {
        let chains = generate_chains(&oag, &frontier, c.first..c.last, &ChainConfig::default());
        for chain in chains.iter() {
            weighted += chain.len() * chain.len();
            elements += chain.len();
        }
    }
    weighted as f64 / elements.max(1) as f64
}

#[test]
fn partitioned_input_yields_longer_chains() {
    let g = shuffled_families();
    let parts = streaming_partition(&g, 16);
    let (reordered, _) = apply_hyperedge_partition(&g, &parts);
    let before = element_weighted_chain_len(&g, 16);
    let after = element_weighted_chain_len(&reordered, 16);
    assert!(
        after > before * 1.5,
        "partitioning must lengthen per-chunk chains ({before:.2} -> {after:.2})"
    );
}

#[test]
fn partitioning_improves_chgraph_on_globally_shuffled_inputs() {
    use chgraph::{ChGraphRuntime, RunConfig, Runtime};
    let g = shuffled_families();
    let parts = streaming_partition(&g, 16);
    let (reordered, _) = apply_hyperedge_partition(&g, &parts);
    let cfg = RunConfig::new();
    let pr = hyperalgos::PageRank::new().with_iterations(3);
    let base = ChGraphRuntime::new().execute(&g, &pr, &cfg);
    let part = ChGraphRuntime::new().execute(&reordered, &pr, &cfg);
    assert!(
        part.mem.main_memory_accesses() < base.mem.main_memory_accesses(),
        "co-locating families must cut ChGraph's off-chip traffic ({} vs {})",
        part.mem.main_memory_accesses(),
        base.mem.main_memory_accesses()
    );
    // Results are invariant under the renumbering up to the permutation:
    // compare total rank mass.
    let sum = |s: &[f64]| s.iter().sum::<f64>();
    assert!((sum(&base.state.vertex_value) - sum(&part.state.vertex_value)).abs() < 1e-9);
}

#[test]
fn co_location_rate_bounds() {
    let g = shuffled_families();
    let all_one = vec![0u32; g.num_hyperedges()];
    assert_eq!(co_location_rate(&g, &all_one, 3), 1.0);
    let alternating: Vec<u32> = (0..g.num_hyperedges()).map(|h| (h % 2) as u32).collect();
    let r = co_location_rate(&g, &alternating, 3);
    assert!((0.0..1.0).contains(&r));
}
