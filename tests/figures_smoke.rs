//! Smoke coverage for every regeneration artifact at tiny scale: each one
//! must produce well-formed, non-empty output.

use chg_bench::figures::{self, Harness};
use chg_bench::Scale;

fn harness() -> Harness {
    Harness::new(Scale(0.05))
}

#[test]
fn static_artifacts_render() {
    let t1 = figures::table1();
    assert!(t1.to_string().contains("L3"));
    let t2 = figures::table2(Scale(0.05));
    assert_eq!(t2.rows.len(), 5);
    let area = figures::area_table();
    assert!(area.to_string().contains("mm^2"));
}

#[test]
fn motivation_artifacts_render() {
    let h = harness();
    assert!(figures::fig2(&h).to_string().contains("reduction"));
    assert!(figures::fig3(&h).to_string().contains("ChGraph"));
    let f5 = figures::fig5(&h);
    assert_eq!(f5.cells.len(), 20);
    let f7 = figures::fig7(&h);
    assert_eq!(f7.speedups.len(), 6);
    let f8 = figures::fig8(&h);
    assert!(f8.to_string().contains("k=10"));
}

#[test]
fn sensitivity_artifacts_render() {
    let h = harness();
    let f17 = figures::fig17(&h);
    assert_eq!(f17.samples.len(), 30);
    let f18 = figures::fig18(&h);
    assert_eq!(f18.samples.len(), 25);
    let f19 = figures::fig19(&h);
    assert_eq!(f19.samples.len(), 24);
    let f20 = figures::fig20(&h);
    assert_eq!(f20.samples.len(), 20);
    for (artifact, text) in [
        ("fig17", f17.to_string()),
        ("fig18", f18.to_string()),
        ("fig19", f19.to_string()),
        ("fig20", f20.to_string()),
    ] {
        assert!(text.lines().count() > 4, "{artifact} output too small");
    }
}

#[test]
fn preprocessing_and_alternative_artifacts_render() {
    let h = harness();
    let f21 = figures::fig21(&h);
    assert_eq!(f21.overheads.len(), 5);
    let f23 = figures::fig23(&h);
    assert_eq!(f23.speedups.len(), 6);
    let f24 = figures::fig24(&h);
    assert_eq!(f24.cells.len(), 5);
    let f25 = figures::fig25(&h);
    assert_eq!(f25.cells.len(), 4);
}

#[test]
fn extension_artifacts_render() {
    let h = harness();
    let e = figures::energy(&h);
    assert_eq!(e.rows.len(), 5);
    assert!(e.to_string().contains("mJ"));
    let c = figures::chains(&h);
    assert_eq!(c.rows.len(), 5);
    assert!(c.to_string().contains("chained reuse"));
}
