//! Kernel-identity property tests for the hot-path flattening rewrite.
//!
//! The flattening PR rewrote three kernels (the set-associative cache, OAG
//! two-hop counting, chain generation) with flat layouts and epoch-tagged
//! scratch, keeping the originals as `archsim::reference` / `oag::reference`
//! under the `reference-kernels` feature. These properties replay random
//! inputs through both implementations and assert the outputs — including
//! full observer event streams and statistics — are bit-identical, so the
//! committed `BENCH_hotpath.json` speedups are speedups of *the same
//! function*, not of a subtly different one.

use hypergraph::{Frontier, Hypergraph, HypergraphBuilder, Side, VertexId};
use oag::{generate_chains, generate_chains_with_scratch, ChainConfig, ChainScratch, OagConfig};
use proptest::prelude::*;

/// Strategy: an arbitrary small hypergraph (same shape as tests/properties.rs).
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (2usize..40).prop_flat_map(|nv| {
        (Just(nv), prop::collection::vec(prop::collection::vec(0u32..nv as u32, 1..8), 1..30))
            .prop_map(|(nv, rows)| {
                let mut b = HypergraphBuilder::new(nv);
                for row in rows {
                    b.add_hyperedge(row.into_iter().map(VertexId::new)).expect("in range");
                }
                b.build()
            })
    })
}

/// Strategy: a random OAG configuration, biased to small degree caps so the
/// bounded top-k selection path is actually exercised.
fn arb_oag_config() -> impl Strategy<Value = OagConfig> {
    (1u32..4, 1u32..6, 2u32..40).prop_map(|(w_min, max_degree, max_pivot)| {
        OagConfig::new()
            .with_w_min(w_min)
            .with_max_degree(max_degree)
            .with_max_pivot_degree(max_pivot)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flat SoA cache == nested reference cache, for every access result,
    /// probe, invalidation, and the final resident-line census, across
    /// random geometries and op streams — including streams that cross the
    /// flat cache's `u32` LRU-stamp wrap (the reference's `u64` clock never
    /// wraps, so any compaction artifact diverges immediately).
    fn cache_streams_are_identical(
        geometry in (0usize..5, 1usize..5),
        ops in prop::collection::vec((0u64..(1 << 14), 0u32..16, any::<bool>()), 1..600),
        // `wrap_at >= 600` (half the range) means the stream never wraps.
        wrap_at in 0usize..1200,
        wrap_back in 0u32..4,
    ) {
        let (set_pow, ways) = geometry;
        let cfg = archsim::CacheConfig {
            size_bytes: 64 * ways * (1 << set_pow),
            ways,
            latency: 1,
        };
        let mut flat = archsim::Cache::new(&cfg, 64);
        let mut nested = archsim::reference::Cache::new(&cfg, 64);
        for (step, (addr, op, write)) in ops.into_iter().enumerate() {
            if wrap_at == step {
                // Park the flat side's LRU clock at the wrap edge
                // mid-stream; the rank compaction must be unobservable.
                flat.force_stamp(u32::MAX - wrap_back);
            }
            match op {
                0 => prop_assert_eq!(flat.invalidate(addr), nested.invalidate(addr)),
                1 => prop_assert_eq!(flat.mark_dirty(addr), nested.mark_dirty(addr)),
                2 => prop_assert_eq!(flat.contains(addr), nested.contains(addr)),
                3 => {
                    flat.flush_silently();
                    nested.flush_silently();
                }
                _ => prop_assert_eq!(flat.access(addr, write), nested.access(addr, write)),
            }
        }
        prop_assert_eq!(flat.resident_lines(), nested.resident_lines());
    }

    /// Epoch-counted OAG build (serial and threaded) == the pre-rewrite
    /// clear-as-drain + full-sort build, graph and stats both.
    fn oag_builds_are_identical(
        g in arb_hypergraph(),
        cfg in arb_oag_config(),
        threads in 1usize..4,
    ) {
        for side in [Side::Hyperedge, Side::Vertex] {
            let (want, want_stats) = oag::reference::build_with_stats(&cfg, &g, side);
            let (got, got_stats) = cfg.build_with_stats(&g, side);
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(got_stats, want_stats);
            let threaded = cfg.build_threads(&g, side, threads);
            prop_assert_eq!(&threaded, &want);
        }
    }

    /// OAG counting scratch parked just below the `u32` epoch wrap produces
    /// the same graph as the reference — the one real `fill(0)` on wrap is
    /// invisible.
    fn oag_build_survives_epoch_wraparound(
        g in arb_hypergraph(),
        cfg in arb_oag_config(),
        back in 0u32..3,
    ) {
        let side = Side::Hyperedge;
        let (want, want_stats) = oag::reference::build_with_stats(&cfg, &g, side);
        let (got, got_stats) = cfg.build_with_stats_at_epoch(&g, side, u32::MAX - back);
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(got_stats, want_stats);
    }

    /// Chain generation with a *reused* scratch — history from previous
    /// cases, chunked ranges, sparse frontiers — matches both the reference
    /// walk and the allocating entry point.
    fn chain_generation_is_identical(
        g in arb_hypergraph(),
        d_max in 1usize..20,
        keep in prop::collection::vec(any::<bool>(), 1..40),
        cores in 1u32..5,
        epoch_back in 0u32..4,
    ) {
        let n = g.num_hyperedges() as u32;
        let oag = OagConfig::new().with_w_min(1).build(&g, Side::Hyperedge);
        let frontier = Frontier::from_iter(
            n as usize,
            (0..n).filter(|&h| keep.get(h as usize).copied().unwrap_or(false)),
        );
        let cfg = ChainConfig::new(d_max);
        // A scratch with arbitrary prior history, including one parked just
        // below the epoch wrap, reused across every chunk.
        let mut scratch = ChainScratch::new();
        scratch.force_epoch(u32::MAX - epoch_back);
        let chunk = n.div_ceil(cores).max(1);
        for c in 0..cores {
            let range = (c * chunk).min(n)..((c + 1) * chunk).min(n);
            let want = oag::reference::generate_chains(&oag, &frontier, range.clone(), &cfg);
            let fresh = generate_chains(&oag, &frontier, range.clone(), &cfg);
            let reused =
                generate_chains_with_scratch(&oag, &frontier, range.clone(), &cfg, &mut scratch);
            prop_assert_eq!(&fresh, &want);
            prop_assert_eq!(&reused, &want);
        }
    }
}
