//! Property-based tests over the whole stack.

use hypergraph::{Frontier, Hypergraph, HypergraphBuilder, Side, VertexId};
use oag::{generate_chains, ChainConfig, OagConfig};
use proptest::prelude::*;

/// Strategy: an arbitrary small hypergraph as (num_vertices, hyperedges).
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (2usize..40).prop_flat_map(|nv| {
        (Just(nv), prop::collection::vec(prop::collection::vec(0u32..nv as u32, 1..8), 1..30))
            .prop_map(|(nv, rows)| {
                let mut b = HypergraphBuilder::new(nv);
                for row in rows {
                    b.add_hyperedge(row.into_iter().map(VertexId::new)).expect("in range");
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn text_io_roundtrips(g in arb_hypergraph()) {
        let mut buf = Vec::new();
        hypergraph::io::write_text(&g, &mut buf).unwrap();
        let g2 = hypergraph::io::read_text(&buf[..]).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn csr_sides_are_mutually_consistent(g in arb_hypergraph()) {
        // v in N(h) iff h in N(v).
        for h in 0..g.num_hyperedges() as u32 {
            for &v in g.incidence(Side::Hyperedge, h) {
                prop_assert!(g.incidence(Side::Vertex, v).contains(&h));
            }
        }
        for v in 0..g.num_vertices() as u32 {
            for &h in g.incidence(Side::Vertex, v) {
                prop_assert!(g.incidence(Side::Hyperedge, h).contains(&v));
            }
        }
    }

    #[test]
    fn oag_matches_naive_intersections(g in arb_hypergraph(), w_min in 1u32..4) {
        let oag = OagConfig::new()
            .with_w_min(w_min)
            .with_max_degree(u32::MAX)
            .with_max_pivot_degree(u32::MAX)
            .build(&g, Side::Hyperedge);
        for a in 0..g.num_hyperedges() as u32 {
            for b in 0..g.num_hyperedges() as u32 {
                if a == b { continue; }
                let sa = g.incidence(Side::Hyperedge, a);
                let sb = g.incidence(Side::Hyperedge, b);
                let w = sa.iter().filter(|v| sb.contains(v)).count() as u32;
                if w >= w_min {
                    prop_assert_eq!(oag.weight(a, b), Some(w));
                } else {
                    prop_assert_eq!(oag.weight(a, b), None);
                }
            }
        }
    }

    #[test]
    fn chains_are_a_permutation_of_the_active_set(
        g in arb_hypergraph(),
        d_max in 1usize..20,
        keep in prop::collection::vec(any::<bool>(), 1..30),
    ) {
        let n = g.num_hyperedges();
        let oag = OagConfig::new().with_w_min(1).build(&g, Side::Hyperedge);
        let frontier = Frontier::from_iter(
            n,
            (0..n as u32).filter(|&h| keep.get(h as usize).copied().unwrap_or(false)),
        );
        let chains = generate_chains(&oag, &frontier, 0..n as u32, &ChainConfig::new(d_max));
        let mut sched: Vec<u32> = chains.schedule().to_vec();
        sched.sort_unstable();
        prop_assert_eq!(sched, frontier.to_vec());
        prop_assert!(chains.max_chain_len() <= d_max.max(1));
    }

    #[test]
    fn frontier_semantics_match_a_btreeset(
        ops in prop::collection::vec((0u32..64, any::<bool>()), 0..200)
    ) {
        let mut f = Frontier::empty(64);
        let mut set = std::collections::BTreeSet::new();
        for (id, insert) in ops {
            if insert {
                prop_assert_eq!(f.insert(id), set.insert(id));
            } else {
                prop_assert_eq!(f.remove(id), set.remove(&id));
            }
            prop_assert_eq!(f.len(), set.len());
        }
        prop_assert_eq!(f.to_vec(), set.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn runtimes_agree_on_random_hypergraphs(g in arb_hypergraph()) {
        use chgraph::{ChGraphRuntime, HygraRuntime, MinLabel, RunConfig, Runtime};
        let cfg = RunConfig::new().with_system(archsim::SystemConfig::scaled(2));
        let a = HygraRuntime.execute(&g, &MinLabel, &cfg);
        let b = ChGraphRuntime::new().execute(&g, &MinLabel, &cfg);
        prop_assert_eq!(a.state.vertex_value, b.state.vertex_value);
        prop_assert_eq!(a.state.hyperedge_value, b.state.hyperedge_value);
    }

    #[test]
    fn reorder_is_an_isomorphism(g in arb_hypergraph()) {
        let (r, _) = chgraph::baseline::reorder::reorder(&g);
        prop_assert_eq!(r.num_vertices(), g.num_vertices());
        prop_assert_eq!(r.num_hyperedges(), g.num_hyperedges());
        prop_assert_eq!(r.num_bipartite_edges(), g.num_bipartite_edges());
        let degs = |g: &Hypergraph, side: Side| {
            let mut d: Vec<usize> = (0..g.num_on(side)).map(|i| g.csr_for(side).degree(i)).collect();
            d.sort_unstable();
            d
        };
        prop_assert_eq!(degs(&r, Side::Hyperedge), degs(&g, Side::Hyperedge));
        prop_assert_eq!(degs(&r, Side::Vertex), degs(&g, Side::Vertex));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulated cache must behave exactly like a reference LRU model.
    #[test]
    fn cache_matches_reference_lru(
        addrs in prop::collection::vec((0u64..64, any::<bool>()), 1..300)
    ) {
        use archsim::{Cache, CacheConfig};
        // 2 sets x 4 ways.
        let mut cache = Cache::new(&CacheConfig { size_bytes: 512, ways: 4, latency: 1 }, 64);
        // Reference: per-set LRU list of line numbers.
        let mut sets: Vec<Vec<u64>> = vec![Vec::new(); 2];
        for (line, write) in addrs {
            let addr = line * 64;
            let set = (line % 2) as usize;
            let expected_hit = sets[set].contains(&line);
            let got = cache.access(addr, write);
            prop_assert_eq!(got.hit, expected_hit, "line {} set {}", line, set);
            if expected_hit {
                let pos = sets[set].iter().position(|&l| l == line).unwrap();
                sets[set].remove(pos);
            } else if sets[set].len() == 4 {
                let victim = sets[set].remove(0);
                prop_assert_eq!(got.evicted, Some(victim * 64));
            }
            sets[set].push(line);
        }
    }
}
