//! Cross-runtime equivalence: every scheduling strategy must compute the
//! same results — chains change performance, never semantics.

use chgraph::{
    ChGraphRuntime, GlaRuntime, HatsVRuntime, HygraRuntime, PrefetcherRuntime, RunConfig, Runtime,
};
use hyperalgos::{run_workload, Workload};
use hypergraph::generate::GeneratorConfig;
use hypergraph::Hypergraph;

fn graphs() -> Vec<Hypergraph> {
    vec![
        hypergraph::fig1_example(),
        GeneratorConfig::new(400, 300).with_seed(1).generate(),
        GeneratorConfig::new(600, 250)
            .with_seed(2)
            .with_family_range(4, 64)
            .with_member_prob(0.85)
            .generate(),
        hypergraph::generate::two_uniform_graph(300, 900, 3),
    ]
}

fn runtimes() -> Vec<Box<dyn Runtime>> {
    vec![
        Box::new(HygraRuntime),
        Box::new(GlaRuntime),
        Box::new(ChGraphRuntime::new()),
        Box::new(ChGraphRuntime::hcg_only()),
        Box::new(HatsVRuntime),
        Box::new(PrefetcherRuntime),
    ]
}

/// Exact equality for min/count-style algorithms; tolerance for float
/// accumulators (sum order differs across schedules).
fn assert_state_eq(a: &chgraph::State, b: &chgraph::State, tol: f64, ctx: &str) {
    let cmp = |x: &[f64], y: &[f64], what: &str| {
        assert_eq!(x.len(), y.len(), "{ctx}: {what} length");
        for (i, (p, q)) in x.iter().zip(y).enumerate() {
            let scale = p.abs().max(q.abs()).max(1.0);
            assert!(
                (p - q).abs() <= tol * scale || (p.is_infinite() && q.is_infinite()),
                "{ctx}: {what}[{i}] differs: {p} vs {q}"
            );
        }
    };
    cmp(&a.vertex_value, &b.vertex_value, "vertex_value");
    cmp(&a.hyperedge_value, &b.hyperedge_value, "hyperedge_value");
    cmp(&a.vertex_aux, &b.vertex_aux, "vertex_aux");
    cmp(&a.hyperedge_aux, &b.hyperedge_aux, "hyperedge_aux");
}

fn tolerance_of(w: Workload) -> f64 {
    match w {
        // Pure min-propagation / counting: schedule-independent exactly.
        Workload::Bfs | Workload::Cc | Workload::KCore | Workload::Mis | Workload::Sssp => 0.0,
        // Float accumulation: equal up to associativity noise.
        Workload::Pr | Workload::Bc | Workload::Adsorption => 1e-9,
    }
}

#[test]
fn all_runtimes_agree_on_all_workloads() {
    let cfg = RunConfig::new().with_system(archsim::SystemConfig::scaled(4));
    for (gi, g) in graphs().iter().enumerate() {
        for w in Workload::HYPERGRAPH.into_iter().chain(Workload::GRAPH) {
            let reference = run_workload(w, &HygraRuntime, g, &cfg);
            for rt in runtimes() {
                let r = run_workload(w, rt.as_ref(), g, &cfg);
                assert_state_eq(
                    &r.state,
                    &reference.state,
                    tolerance_of(w),
                    &format!("graph {gi}, {w}, {}", rt.name()),
                );
            }
        }
    }
}

#[test]
fn iteration_counts_match_across_runtimes() {
    let g = GeneratorConfig::new(500, 400).with_seed(7).generate();
    let cfg = RunConfig::new().with_system(archsim::SystemConfig::scaled(2));
    for w in [Workload::Bfs, Workload::Cc, Workload::KCore] {
        let a = run_workload(w, &HygraRuntime, &g, &cfg);
        let b = run_workload(w, &ChGraphRuntime::new(), &g, &cfg);
        assert_eq!(a.iterations, b.iterations, "{w}");
    }
}

#[test]
fn core_count_does_not_change_results() {
    let g = GeneratorConfig::new(500, 400).with_seed(8).generate();
    for w in [Workload::Bfs, Workload::Cc, Workload::Mis] {
        let one = run_workload(
            w,
            &ChGraphRuntime::new(),
            &g,
            &RunConfig::new().with_system(archsim::SystemConfig::scaled(1)),
        );
        let sixteen = run_workload(
            w,
            &ChGraphRuntime::new(),
            &g,
            &RunConfig::new().with_system(archsim::SystemConfig::scaled(16)),
        );
        assert_eq!(one.state.vertex_value, sixteen.state.vertex_value, "{w}");
    }
}

#[test]
fn chain_parameters_do_not_change_results() {
    let g = GeneratorConfig::new(500, 400).with_seed(9).generate();
    let base = run_workload(Workload::Cc, &ChGraphRuntime::new(), &g, &RunConfig::new());
    for d_max in [1usize, 4, 64] {
        for w_min in [1u32, 5] {
            let cfg = RunConfig::new()
                .with_chain(oag::ChainConfig::new(d_max))
                .with_oag(oag::OagConfig::new().with_w_min(w_min));
            let r = run_workload(Workload::Cc, &ChGraphRuntime::new(), &g, &cfg);
            assert_eq!(
                r.state.vertex_value, base.state.vertex_value,
                "D_max={d_max} W_min={w_min}"
            );
        }
    }
}
