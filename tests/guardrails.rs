//! Integration tests for the runtime guardrails: structural validators,
//! execution watchdogs, and the differential self-check mode.
//!
//! The validators are exercised in both directions — every internally
//! generated structure must pass, and targeted single-field corruptions
//! must be rejected with the *right* typed variant, so a guard trip can be
//! traced to the invariant it protects.

use chgraph::{
    Algorithm, Budget, ChGraphRuntime, ExecError, GlaRuntime, HygraRuntime, RunConfig, Runtime,
    State, UpdateOutcome, WatchdogConfig,
};
use hyperalgos::{self_check, SelfCheckError, Workload};
use hypergraph::generate::GeneratorConfig;
use hypergraph::{Csr, Frontier, Hypergraph, Side, ValidationError};
use oag::{generate_chains, ChainConfig, ChainSet, OagConfig};
use proptest::prelude::*;

fn small_cfg() -> RunConfig {
    RunConfig::new().with_system(archsim::SystemConfig::scaled(2))
}

// ---------------------------------------------------------------------------
// Structural validators: generated structures pass, mutations are rejected.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_structures_pass_every_validator(
        nv in 64usize..200,
        nh in 20usize..120,
        seed in 0u64..1_000,
    ) {
        let g = GeneratorConfig::new(nv, nh).with_seed(seed).generate();
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.validate_undirected().is_ok());
        for side in [Side::Hyperedge, Side::Vertex] {
            let oag = OagConfig::new().build(&g, side);
            prop_assert!(oag.validate().is_ok(), "{side} OAG failed validation");
            let frontier = Frontier::full(g.num_on(side));
            let range = 0..g.num_on(side) as u32;
            let chains = generate_chains(&oag, &frontier, range.clone(), &ChainConfig::default());
            prop_assert!(
                chains.validate_cover(&frontier, range).is_ok(),
                "{side} chain schedule is not a cover"
            );
        }
    }

    #[test]
    fn corrupted_offsets_are_rejected_as_non_monotone(seed in 0u64..200) {
        let g = GeneratorConfig::new(64, 40).with_seed(seed).generate();
        let csr = g.csr_for(Side::Hyperedge);
        let mut offsets = csr.offsets().to_vec();
        if offsets.len() <= 2 || csr.num_edges() == 0 {
            return; // degenerate draw; nothing to corrupt
        }
        // Raise the first offset above the last: strictly decreasing
        // somewhere, whatever the row layout.
        offsets[0] = offsets.last().unwrap() + 1;
        match Csr::try_from_raw(offsets, csr.targets().to_vec()) {
            Err(ValidationError::NonMonotoneOffsets { .. }) => {}
            other => prop_assert!(false, "expected NonMonotoneOffsets, got {other:?}"),
        }
    }

    #[test]
    fn truncated_targets_are_rejected_as_count_mismatch(seed in 0u64..200) {
        let g = GeneratorConfig::new(64, 40).with_seed(seed).generate();
        let csr = g.csr_for(Side::Vertex);
        let mut targets = csr.targets().to_vec();
        if targets.is_empty() {
            return; // degenerate draw; nothing to corrupt
        }
        targets.pop();
        match Csr::try_from_raw(csr.offsets().to_vec(), targets) {
            Err(ValidationError::TargetCountMismatch { .. }) => {}
            other => prop_assert!(false, "expected TargetCountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn dangling_incidence_is_rejected_as_out_of_range(seed in 0u64..200) {
        let g = GeneratorConfig::new(64, 40).with_seed(seed).generate();
        let h = g.csr_for(Side::Hyperedge);
        let mut targets = h.targets().to_vec();
        if targets.is_empty() {
            return; // degenerate draw; nothing to corrupt
        }
        // Point one incidence entry past the vertex id range.
        targets[0] = g.num_vertices() as u32;
        let bad = Csr::from_raw(h.offsets().to_vec(), targets);
        let rebuilt = Hypergraph::try_from_directed_csr(bad, g.csr_for(Side::Vertex).clone());
        match rebuilt {
            Err(ValidationError::TargetOutOfRange { .. }) => {}
            other => prop_assert!(false, "expected TargetOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn dropped_chain_elements_are_caught_before_execution(
        seed in 0u64..500,
        victim_pick in 0usize..64,
    ) {
        // The paper's §IV reordering invariant: a schedule that silently
        // drops an active hyperedge would produce a wrong answer with no
        // error. validate_cover must catch it up front.
        let g = GeneratorConfig::new(96, 48).with_seed(seed).generate();
        let oag = OagConfig::new().build(&g, Side::Hyperedge);
        let frontier = Frontier::full(g.num_hyperedges());
        let range = 0..g.num_hyperedges() as u32;
        let chains = generate_chains(&oag, &frontier, range.clone(), &ChainConfig::default());
        if chains.num_elements() <= 1 {
            return; // degenerate draw; dropping would empty the schedule
        }
        let victim_pos = victim_pick % chains.num_elements();
        let victim = chains.schedule()[victim_pos];
        let corrupted = ChainSet::from_chains(chains.iter().map(|chain| {
            chain.iter().copied().filter(|&e| e != victim).collect::<Vec<_>>()
        }));
        match corrupted.validate_cover(&frontier, range) {
            Err(ValidationError::ChainMissedElement { element }) => {
                prop_assert_eq!(element, victim);
            }
            other => prop_assert!(false, "expected ChainMissedElement, got {other:?}"),
        }
    }

    #[test]
    fn duplicated_chain_elements_are_caught_before_execution(seed in 0u64..500) {
        let g = GeneratorConfig::new(96, 48).with_seed(seed).generate();
        let oag = OagConfig::new().build(&g, Side::Hyperedge);
        let frontier = Frontier::full(g.num_hyperedges());
        let range = 0..g.num_hyperedges() as u32;
        let chains = generate_chains(&oag, &frontier, range.clone(), &ChainConfig::default());
        if chains.is_empty() {
            return; // degenerate draw; nothing to duplicate
        }
        let dup = chains.schedule()[0];
        let mut lists: Vec<Vec<u32>> = chains.iter().map(<[u32]>::to_vec).collect();
        lists.push(vec![dup]);
        match ChainSet::from_chains(lists).validate_cover(&frontier, range) {
            Err(ValidationError::ChainDuplicateVisit { element }) => {
                prop_assert_eq!(element, dup);
            }
            other => prop_assert!(false, "expected ChainDuplicateVisit, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Execution watchdogs: livelocks become typed errors with partial stats.
// ---------------------------------------------------------------------------

/// A deliberately non-converging algorithm: every element re-activates the
/// full frontier forever, so only a watchdog budget can end the run.
#[derive(Clone, Copy, Debug)]
struct NeverConverges;

impl Algorithm for NeverConverges {
    fn name(&self) -> &'static str {
        "never-converges"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        (State::filled(g, 0.0, 0.0), Frontier::full(g.num_vertices()))
    }

    fn apply_hf(&self, _g: &Hypergraph, state: &mut State, _v: u32, h: u32) -> UpdateOutcome {
        state.hyperedge_value[h as usize] += 1.0;
        UpdateOutcome::WROTE_AND_ACTIVATED
    }

    fn apply_vf(&self, _g: &Hypergraph, state: &mut State, _h: u32, v: u32) -> UpdateOutcome {
        state.vertex_value[v as usize] += 1.0;
        UpdateOutcome::WROTE_AND_ACTIVATED
    }

    fn all_active(&self) -> bool {
        true
    }

    fn max_iterations(&self) -> usize {
        usize::MAX
    }
}

#[test]
fn cycle_budget_converts_a_livelock_into_a_typed_error_with_partial_stats() {
    let g = GeneratorConfig::new(128, 64).with_seed(9).generate();
    // Measure one iteration's cost, then budget for roughly three.
    let one = HygraRuntime.execute(&g, &NeverConverges, &small_cfg().with_max_iterations(1));
    assert!(one.cycles > 0);
    let cfg = small_cfg().with_max_cycles(3 * one.cycles);
    match HygraRuntime.try_execute(&g, &NeverConverges, &cfg) {
        Err(ExecError::BudgetExceeded { phase, budget: Budget::Cycles, progress }) => {
            assert!(!phase.is_empty(), "phase must name where the budget tripped");
            assert!(progress.cycles >= 3 * one.cycles, "trip happens only past the budget");
            assert!(progress.iterations >= 2, "partial progress must be reported");
            assert!(progress.iterations < 100, "the watchdog must end the livelock early");
        }
        other => panic!("expected a cycle-budget trip, got {other:?}"),
    }
}

#[test]
fn stalled_frontier_budget_trips_on_a_non_shrinking_frontier() {
    let g = GeneratorConfig::new(128, 64).with_seed(10).generate();
    let watchdog = WatchdogConfig::default().with_max_stalled_iterations(4);
    let cfg = small_cfg().with_watchdog(watchdog);
    match HygraRuntime.try_execute(&g, &NeverConverges, &cfg) {
        Err(ExecError::BudgetExceeded { budget: Budget::StalledFrontier, progress, .. }) => {
            assert!(progress.frontier_len > 0);
            assert!(
                (4..=6).contains(&progress.iterations),
                "stall budget of 4 must trip shortly after 4 non-shrinking iterations, \
                 tripped at {}",
                progress.iterations
            );
        }
        other => panic!("expected a stalled-frontier trip, got {other:?}"),
    }
}

#[test]
fn watchdogs_do_not_perturb_converging_runs() {
    // A generous budget must leave results bit-identical to an unguarded run.
    let g = GeneratorConfig::new(128, 64).with_seed(11).generate();
    let plain = HygraRuntime.execute(&g, &hyperalgos::ConnectedComponents, &small_cfg());
    let guarded_cfg = small_cfg()
        .with_watchdog(WatchdogConfig::default().with_max_stalled_iterations(1_000))
        .with_max_cycles(u64::MAX)
        .with_validate(true);
    let guarded = HygraRuntime
        .try_execute(&g, &hyperalgos::ConnectedComponents, &guarded_cfg)
        .expect("generous budgets never trip");
    assert_eq!(plain.state.vertex_value, guarded.state.vertex_value);
    assert_eq!(plain.cycles, guarded.cycles);
}

#[test]
fn chain_runtimes_honor_budgets_and_deep_validation_together() {
    let g = GeneratorConfig::new(128, 64).with_seed(12).generate();
    let cfg = small_cfg().with_validate(true).with_max_cycles(u64::MAX);
    for (name, runtime) in
        [("gla", &GlaRuntime as &dyn Runtime), ("chgraph", &ChGraphRuntime::new() as &dyn Runtime)]
    {
        let r = runtime
            .try_execute(&g, &hyperalgos::ConnectedComponents, &cfg)
            .unwrap_or_else(|e| panic!("{name}: healthy run must pass deep validation: {e}"));
        assert!(r.cycles > 0, "{name}");
    }
}

#[test]
fn unsimulatable_machine_configs_are_typed_errors() {
    let g = GeneratorConfig::new(64, 32).with_seed(13).generate();
    let mut cfg = RunConfig::new().with_system(archsim::SystemConfig::scaled(32));
    cfg.system.num_cores = 33;
    cfg.system.noc.width = 6;
    cfg.system.noc.height = 6;
    match HygraRuntime.try_execute(&g, &hyperalgos::ConnectedComponents, &cfg) {
        Err(ExecError::InvalidConfig(msg)) => {
            assert!(msg.contains("directory bitmask supports up to 32 cores"), "{msg}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Differential self-check: all eight workloads, multiple runtimes.
// ---------------------------------------------------------------------------

#[test]
fn all_eight_workloads_self_check_under_every_runtime_family() {
    let g = GeneratorConfig::new(160, 90).with_seed(21).generate();
    let cfg = small_cfg();
    for runtime in [&HygraRuntime as &dyn Runtime, &GlaRuntime, &ChGraphRuntime::new()] {
        for w in Workload::HYPERGRAPH.into_iter().chain(Workload::GRAPH) {
            let checked = self_check(w, runtime, &g, &cfg).unwrap_or_else(|e| {
                panic!("{w} under {} failed its self-check: {e}", runtime.name())
            });
            assert!(checked.elements_checked > 0, "{w}: nothing was compared");
        }
    }
}

#[test]
fn self_check_reports_budget_trips_as_exec_errors_with_progress() {
    let g = GeneratorConfig::new(160, 90).with_seed(22).generate();
    let cfg = small_cfg().with_max_cycles(1);
    match self_check(Workload::Cc, &HygraRuntime, &g, &cfg) {
        Err(SelfCheckError::Exec(ExecError::BudgetExceeded { progress, .. })) => {
            assert!(progress.cycles > 0, "partial stats survive the trip");
        }
        other => panic!("expected a budget trip, got {other:?}"),
    }
}
