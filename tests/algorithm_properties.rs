//! Property-based verification of the algorithms against their naive
//! references, on randomly generated hypergraphs.

use chgraph::{ChGraphRuntime, HygraRuntime, RunConfig, Runtime};
use hyperalgos::{
    default_source, reference, Bfs, ConnectedComponents, CoreDecomposition, Mis, PageRank, Sssp,
};
use hypergraph::generate::GeneratorConfig;
use hypergraph::Hypergraph;
use proptest::prelude::*;

/// Random small family-model hypergraphs (the structured regime) and
/// unstructured ones (adversarial for the chain machinery).
fn arb_graph() -> impl Strategy<Value = Hypergraph> {
    (50usize..300, 30usize..200, 1usize..12, 0u64..1_000, prop::bool::ANY).prop_map(
        |(nv, nh, fam, seed, structured)| {
            let mut cfg = GeneratorConfig::new(nv.max(64), nh);
            cfg = cfg.with_seed(seed);
            if structured {
                cfg = cfg.with_family_range(fam, fam * 4).with_member_prob(0.8);
            } else {
                cfg = cfg.with_family_range(1, 2).with_member_prob(0.3).with_noise(3);
            }
            cfg.generate()
        },
    )
}

fn cfg() -> RunConfig {
    RunConfig::new().with_system(archsim::SystemConfig::scaled(2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bfs_matches_reference(g in arb_graph()) {
        let src = default_source(&g);
        let r = HygraRuntime.execute(&g, &Bfs::new(src), &cfg());
        let (vd, hd) = reference::bfs(&g, src);
        prop_assert_eq!(r.state.vertex_value, vd);
        prop_assert_eq!(r.state.hyperedge_value, hd);
    }

    #[test]
    fn cc_matches_reference(g in arb_graph()) {
        let r = ChGraphRuntime::new().execute(&g, &ConnectedComponents, &cfg());
        prop_assert_eq!(r.state.vertex_value, reference::connected_components(&g));
    }

    #[test]
    fn coreness_matches_reference(g in arb_graph()) {
        let r = HygraRuntime.execute(&g, &CoreDecomposition::new(), &cfg());
        let got = CoreDecomposition::coreness(&r.state);
        prop_assert_eq!(got, reference::coreness(&g));
    }

    #[test]
    fn mis_is_always_valid_and_maximal(g in arb_graph()) {
        let r = ChGraphRuntime::new().execute(&g, &Mis, &cfg());
        reference::assert_valid_mis(&g, &Mis::statuses(&r.state));
    }

    #[test]
    fn sssp_matches_dijkstra(g in arb_graph()) {
        let src = default_source(&g);
        let r = HygraRuntime.execute(&g, &Sssp::new(src), &cfg());
        prop_assert_eq!(r.state.vertex_value, reference::sssp(&g, src));
    }

    #[test]
    fn pagerank_matches_reference_within_float_noise(g in arb_graph()) {
        let pr = PageRank::new().with_iterations(4);
        let r = HygraRuntime.execute(&g, &pr, &cfg());
        let want = reference::pagerank(&g, 0.85, 4);
        for (got, want) in r.state.vertex_value.iter().zip(&want) {
            prop_assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn bc_dependencies_are_nonnegative_and_zero_off_component(g in arb_graph()) {
        let src = default_source(&g);
        let r = hyperalgos::run_bc(&HygraRuntime, &g, &cfg(), src);
        let (vd, _) = reference::bfs(&g, src);
        for (v, (&delta, &dist)) in r.state.vertex_value.iter().zip(&vd).enumerate() {
            prop_assert!(delta >= 0.0, "v{v} has negative dependency {delta}");
            if dist.is_infinite() && v != src.index() {
                prop_assert_eq!(delta, 0.0, "unreachable v{} must have zero delta", v);
            }
        }
    }
}
