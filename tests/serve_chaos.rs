//! Network-chaos tests of the serving layer: a deterministic fault proxy
//! sits between a retrying client and the daemon, and every outcome must
//! be (a) reproducible from the chaos seed and (b) correct — retried
//! requests return results bit-identical to a fault-free run. The last
//! test goes further than socket faults: it SIGKILLs a real `chgraphd`
//! process mid-run, vandalizes its on-disk cache, restarts it on the same
//! port, and proves a retrying client completes with the same fingerprint
//! while the cache converges back to a residue-free state.
//!
//! Determinism discipline: the fault schedule is a pure function of
//! (seed, connection index), requests run sequentially so connection
//! indices are reproducible, and the CI workflow runs this suite twice to
//! enforce run-to-run equality of the assertions below.

use chg_serve::{
    plan_for, ChaosPolicy, ChaosProxy, Client, ErrorClass, RetryPolicy, RunRequest, ServeConfig,
    Server,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SCALE: f64 = 0.02;

fn start(cfg: ServeConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        let _ = server.run();
    });
    (addr, handle)
}

fn base_request() -> RunRequest {
    let mut req = RunRequest::new("pr", "chgraph", "LJ");
    req.scale = SCALE;
    req.iters = Some(4);
    req
}

fn shutdown(addr: SocketAddr) {
    let mut closer = Client::connect_ready(addr, Duration::from_secs(10)).expect("closer");
    closer.shutdown().expect("shutdown");
}

// ---------------------------------------------------------------------------
// Determinism: the schedule is a pure function of (seed, connection index)
// ---------------------------------------------------------------------------

#[test]
fn same_seed_yields_the_same_fault_schedule() {
    // Pure-function level: two policies with the same seed agree plan by
    // plan; a different seed disagrees somewhere early.
    let a = ChaosPolicy::new(0xC0FFEE, 0.5);
    let b = ChaosPolicy::new(0xC0FFEE, 0.5);
    let c = ChaosPolicy::new(0xC0FFED, 0.5);
    let plans_a: Vec<_> = (0..256).map(|i| plan_for(&a, i)).collect();
    let plans_b: Vec<_> = (0..256).map(|i| plan_for(&b, i)).collect();
    let plans_c: Vec<_> = (0..256).map(|i| plan_for(&c, i)).collect();
    assert_eq!(plans_a, plans_b, "identical seeds must produce identical schedules");
    assert_ne!(plans_a, plans_c, "a different seed must diverge");

    // End-to-end level: the same seeded proxy fed the same sequential
    // workload twice produces the same event log and the same per-request
    // attempt counts. Requests are sequential so connection indices (and
    // therefore fault plans) line up run to run.
    let run_once = || {
        let (upstream, handle) = start(ServeConfig { workers: 2, ..ServeConfig::default() });
        // Warm up directly so proxied connections carry pure execution.
        Client::connect_ready(upstream, Duration::from_secs(30))
            .expect("warmup connect")
            .run(base_request())
            .expect("warmup");
        let mut proxy =
            ChaosProxy::spawn(upstream, ChaosPolicy::new(0xC0FFEE, 0.5)).expect("proxy");
        let addr = proxy.addr();

        let mut outcomes = Vec::new();
        for i in 0..8u64 {
            let mut req = base_request();
            req.request_key = Some(format!("chaos-det-{i}"));
            let policy = RetryPolicy {
                max_attempts: 12,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(50),
                overall_deadline: Duration::from_secs(60),
                seed: 0x5EED ^ i,
            };
            let outcome = Client::run_with_retry(addr, req, policy)
                .unwrap_or_else(|e| panic!("request {i} must survive chaos, got {e}"));
            outcomes.push((i, outcome.attempts, outcome.result.fingerprint));
        }
        proxy.stop();
        let events = proxy.events();
        shutdown(upstream);
        handle.join().expect("server thread");
        (outcomes, events)
    };

    let (outcomes_1, events_1) = run_once();
    let (outcomes_2, events_2) = run_once();
    assert_eq!(events_1, events_2, "same seed + same workload must log the same fault events");
    assert_eq!(outcomes_1, outcomes_2, "attempt counts and results must be reproducible");
    assert!(
        events_1.iter().any(|e| !matches!(e.plan, chg_serve::FaultPlan::Clean)),
        "at 50% error rate the schedule must actually contain faults: {events_1:?}"
    );
}

// ---------------------------------------------------------------------------
// Resilience: a retrying client completes through heavy chaos, bit-identical
// ---------------------------------------------------------------------------

#[test]
fn retrying_client_survives_chaos_with_identical_results() {
    let (upstream, handle) = start(ServeConfig { workers: 2, ..ServeConfig::default() });
    // The fault-free reference fingerprint, straight to the server.
    let reference = Client::connect_ready(upstream, Duration::from_secs(30))
        .expect("direct connect")
        .run(base_request())
        .expect("direct run")
        .fingerprint;

    let mut proxy = ChaosProxy::spawn(upstream, ChaosPolicy::new(41, 0.4)).expect("proxy");
    let addr = proxy.addr();

    let mut total_attempts = 0;
    for i in 0..10u64 {
        let mut req = base_request();
        req.request_key = Some(format!("chaos-res-{i}"));
        let policy = RetryPolicy {
            max_attempts: 12,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(50),
            overall_deadline: Duration::from_secs(60),
            seed: 97 ^ i,
        };
        let outcome = Client::run_with_retry(addr, req, policy)
            .unwrap_or_else(|e| panic!("request {i} must survive chaos, got {e}"));
        assert_eq!(
            outcome.result.fingerprint, reference,
            "request {i}: a retried result must be bit-identical to the fault-free run"
        );
        total_attempts += outcome.attempts;
    }
    assert!(
        total_attempts > 10,
        "40% error rate over 10 requests must force at least one retry (attempts: {total_attempts})"
    );

    proxy.stop();
    // The server observed the chaos: mid-frame teardowns and/or mangled
    // frames show up in the per-cause close counters.
    let stats = Client::connect_ready(upstream, Duration::from_secs(10))
        .expect("stats connect")
        .stats()
        .expect("stats");
    let hostile = stats.closes.reset + stats.closes.protocol;
    assert!(hostile > 0, "chaos must register in the close counters: {:?}", stats.closes);

    shutdown(upstream);
    handle.join().expect("server thread");
}

// ---------------------------------------------------------------------------
// Error classification: refused is retryable, mangled bytes are not
// ---------------------------------------------------------------------------

#[test]
fn refused_connection_is_transient_and_malformed_reply_fails_fast() {
    // A port with no listener: connect_ready should keep retrying (the
    // error is Transient) until its deadline, then surface the error.
    let dead_port = {
        let l = TcpListener::bind("127.0.0.1:0").expect("probe bind");
        l.local_addr().expect("probe addr")
    }; // listener dropped: the port is now refused
    let start = Instant::now();
    let err = Client::connect_ready(dead_port, Duration::from_millis(400))
        .err()
        .expect("no listener must fail");
    assert!(start.elapsed() >= Duration::from_millis(300), "must retry until the deadline");
    assert_eq!(err.class(), ErrorClass::Transient, "refused is retryable: {err}");

    // A listener that answers the ping with garbage: the failure is a
    // wire-integrity error and connect_ready must give up immediately
    // instead of burning its whole deadline on a hopeless peer.
    let garbage = TcpListener::bind("127.0.0.1:0").expect("garbage bind");
    let addr = garbage.local_addr().expect("garbage addr");
    let t = std::thread::spawn(move || {
        if let Ok((mut s, _)) = garbage.accept() {
            let _ = s.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nhi");
            let _ = s.flush();
        }
    });
    let start = Instant::now();
    let err = Client::connect_ready(addr, Duration::from_secs(20))
        .err()
        .expect("garbage reply must fail");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "a non-transient probe failure must not burn the whole deadline"
    );
    assert_ne!(err.class(), ErrorClass::Transient, "mangled bytes are not transient: {err}");
    t.join().expect("garbage listener thread");
}

// ---------------------------------------------------------------------------
// Crash recovery: SIGKILL mid-run, restart on the same port, bit-identical
// ---------------------------------------------------------------------------

/// Spawns `chgraphd` and parses the `listening on <addr>` line; the rest
/// of stdout is drained by a background thread so the pipe never blocks
/// the daemon.
fn spawn_daemon(addr: &str, cache_dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_chgraphd"))
        .args([
            "--addr",
            addr,
            "--workers",
            "1",
            "--cache-dir",
            cache_dir.to_str().expect("utf8 cache dir"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn chgraphd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let local = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read daemon stdout");
        assert!(n > 0, "daemon exited before announcing its address");
        if let Some(rest) = line.split("listening on ").nth(1) {
            let token = rest.split_whitespace().next().expect("addr token");
            break token.parse::<SocketAddr>().expect("parse daemon addr");
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, local)
}

/// Cache residue of the kinds crash recovery must clean up.
fn cache_residue(dir: &Path) -> Vec<String> {
    let mut residue = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".corrupt") || name.contains(".tmp.") {
                residue.push(name);
            }
        }
    }
    residue
}

#[test]
fn sigkill_recovery_preserves_results_and_heals_the_cache() {
    let cache_dir = std::env::temp_dir().join(format!("chg-chaos-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    std::fs::create_dir_all(&cache_dir).expect("create cache dir");

    let (mut child, addr) = spawn_daemon("127.0.0.1:0", &cache_dir);

    // Reference result from the first daemon life; this also populates the
    // on-disk cache with the prepared artifacts.
    let reference = Client::connect_ready(addr, Duration::from_secs(60))
        .expect("daemon becomes ready")
        .run(base_request())
        .expect("reference run")
        .fingerprint;

    // Park a long request in flight, then SIGKILL the daemon under it.
    let inflight = std::thread::spawn(move || {
        let mut req = base_request();
        req.repeat = 200;
        Client::connect_ready(addr, Duration::from_secs(10)).expect("inflight connect").run(req)
    });
    {
        let mut stats_client =
            Client::connect_ready(addr, Duration::from_secs(10)).expect("stats connect");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = stats_client.stats().expect("stats");
            if stats.queue_depth >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "request never went in flight: {stats:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    child.kill().expect("SIGKILL chgraphd");
    child.wait().expect("reap killed daemon");
    let err = inflight
        .join()
        .expect("inflight thread")
        .expect_err("the in-flight request must fail when the daemon dies");
    assert!(err.is_retryable(), "a mid-run crash must classify as retryable: {err}");

    // Vandalize the cache the way a crash mid-write would: truncate a real
    // entry and plant tmp/quarantine residue.
    let victim = std::fs::read_dir(&cache_dir)
        .expect("read cache dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "bin"))
        .expect("the first run must have written cache entries");
    let len = std::fs::metadata(&victim).expect("victim metadata").len();
    let file = std::fs::OpenOptions::new().write(true).open(&victim).expect("open victim");
    file.set_len(len / 2).expect("truncate victim");
    drop(file);
    std::fs::write(cache_dir.join("orphan.bin.tmp.4242"), b"partial write").expect("plant tmp");
    std::fs::write(cache_dir.join("old.bin.corrupt"), b"previous life").expect("plant corrupt");

    // Start the retrying client BEFORE the daemon is back: its first
    // attempts hit a refused port and must back off, not give up.
    let policy = RetryPolicy {
        max_attempts: 60,
        base: Duration::from_millis(50),
        cap: Duration::from_millis(500),
        overall_deadline: Duration::from_secs(120),
        seed: 7,
    };
    let retry = std::thread::spawn(move || Client::run_with_retry(addr, base_request(), policy));
    std::thread::sleep(Duration::from_millis(300));

    // Restart on the SAME port (SO_REUSEADDR makes this immediate even
    // with the previous life's connections in TIME_WAIT).
    let (mut child2, addr2) = spawn_daemon(&addr.to_string(), &cache_dir);
    assert_eq!(addr2, addr, "the restarted daemon must reclaim its port");

    let outcome = retry
        .join()
        .expect("retry thread")
        .expect("the retrying client must complete after the restart");
    assert_eq!(
        outcome.result.fingerprint, reference,
        "the result across a crash/restart must be bit-identical"
    );
    assert!(outcome.attempts > 1, "the retrying client must actually have retried");

    // The truncated entry was quarantine-deleted and rebuilt during the
    // retried run; startup recovery swept the planted residue. The cache
    // is clean and still serves the right bytes.
    let residue = cache_residue(&cache_dir);
    assert!(residue.is_empty(), "crash recovery must leave no residue: {residue:?}");
    let again = Client::connect_ready(addr, Duration::from_secs(30))
        .expect("post-recovery connect")
        .run(base_request())
        .expect("post-recovery run");
    assert_eq!(again.fingerprint, reference, "the healed cache must serve identical results");

    shutdown(addr);
    let status = child2.wait().expect("reap restarted daemon");
    assert!(status.success(), "the restarted daemon must drain cleanly: {status:?}");
    let _ = std::fs::remove_dir_all(&cache_dir);
}
