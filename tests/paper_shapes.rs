//! Headline shape assertions: the qualitative results of the paper's
//! evaluation must hold on the stand-in datasets (absolute factors differ —
//! see EXPERIMENTS.md — but orderings and crossovers must not).
//!
//! These run at reduced dataset scale to stay fast; the full-scale numbers
//! are produced by `cargo run --release --bin figures`.

use chg_bench::figures::{self, Harness, System};
use chg_bench::Scale;
use hyperalgos::Workload;
use hypergraph::datasets::Dataset;

fn harness() -> Harness {
    Harness::new(Scale(0.5))
}

#[test]
fn fig2_fig3_gla_reduces_memory_but_not_time_chgraph_reverses() {
    let h = harness();
    let f2 = figures::fig2(&h);
    assert!(
        f2.reduction > 1.15,
        "GLA must cut main-memory accesses for PR on WEB (got {:.2}x)",
        f2.reduction
    );
    let f3 = figures::fig3(&h);
    assert!(
        f3.gla_speedup < 1.2,
        "software GLA must not clearly beat Hygra (got {:.2}x)",
        f3.gla_speedup
    );
    assert!(
        f3.chgraph_speedup > 1.5,
        "ChGraph must clearly beat Hygra for PR on WEB (got {:.2}x)",
        f3.chgraph_speedup
    );
    assert!(f3.chgraph_speedup > f3.gla_speedup * 1.5, "hardware must reverse the GLA loss");
}

#[test]
fn fig5_hypergraph_processing_is_memory_bound_under_hygra() {
    let h = harness();
    let f5 = figures::fig5(&h);
    let mean: f64 = f5.cells.iter().map(|c| c.2).sum::<f64>() / f5.cells.len() as f64;
    assert!(
        mean > 0.25,
        "a large share of Hygra time must stall on memory (paper 51%; got {:.1}%)",
        mean * 100.0
    );
}

#[test]
fn fig7_chgraph_beats_hats_v_on_every_workload() {
    let h = harness();
    let f7 = figures::fig7(&h);
    for &(w, s) in &f7.speedups {
        assert!(s > 0.95, "{w}: ChGraph must not lose to HATS-V (got {s:.2}x)");
    }
    let mean: f64 = f7.speedups.iter().map(|c| c.1).sum::<f64>() / f7.speedups.len() as f64;
    // Deviation note: the paper reports 2.56x-3.01x; our HATS-V model is
    // generously decoupled (it delivers tuples like the CP), so the gap is
    // smaller — ChGraph's remaining edge is the OAG-guided schedule.
    assert!(mean > 1.05, "ChGraph must beat HATS-V on average (got {mean:.2}x)");
}

#[test]
fn fig14_chgraph_wins_everywhere_gla_does_not() {
    let h = harness();
    let f14 = figures::fig14(&h);
    let wins = f14.cells.iter().filter(|c| c.3 > 1.0).count();
    assert!(
        wins * 10 >= f14.cells.len() * 9,
        "ChGraph must beat Hygra on at least 90% of cells (won {wins}/{})",
        f14.cells.len()
    );
    for &(w, ds, _gla, chg) in &f14.cells {
        assert!(chg > 0.75, "{w}/{ds}: ChGraph must never lose badly (got {chg:.2}x)");
    }
    assert!(
        f14.mean_gla_speedup() < 1.1,
        "software GLA must not deliver meaningful mean speedup (got {:.2}x)",
        f14.mean_gla_speedup()
    );
    assert!(
        f14.mean_chgraph_speedup() > 1.8,
        "mean ChGraph speedup too small (got {:.2}x)",
        f14.mean_chgraph_speedup()
    );
}

#[test]
fn fig15_chgraph_reduces_memory_accesses() {
    // At reduced test scale the OAG working set shrinks more slowly than
    // the reuse headroom, so only the all-active workloads show clear
    // reductions; the full-scale numbers live in EXPERIMENTS.md (regenerate
    // with `figures fig15`). Assert the regime-robust cells here.
    let h = harness();
    let f15 = figures::fig15(&h);
    let web_pr = f15
        .reductions
        .iter()
        .find(|r| r.0 == Workload::Pr && r.1 == Dataset::WebTrackers)
        .expect("cell exists")
        .2;
    assert!(web_pr > 1.15, "PR on WEB reduction too small (got {web_pr:.2}x)");
    assert!(
        f15.mean_reduction() > 0.8,
        "ChGraph must not inflate traffic wholesale (got {:.2}x)",
        f15.mean_reduction()
    );
}

/// Full-scale counterpart of the memory-reduction assertion; slow, so it
/// runs only on demand (`cargo test --release -- --ignored`).
#[test]
#[ignore = "full-scale run (~minutes); the default suite asserts at reduced scale"]
fn fig15_full_scale_mean_reduction() {
    let h = Harness::new(Scale::FULL);
    let f15 = figures::fig15(&h);
    // All-active workloads (the paper's Fig. 2 regime) must show clear
    // reductions at full scale; sparse traversals hover near parity in this
    // model (documented in EXPERIMENTS.md).
    let pr_mean = |filter: fn(Dataset) -> bool| -> f64 {
        let cells: Vec<f64> = f15
            .reductions
            .iter()
            .filter(|r| r.0 == Workload::Pr && filter(r.1))
            .map(|r| r.2)
            .collect();
        cells.iter().sum::<f64>() / cells.len() as f64
    };
    // The light-overlap group carries the big reductions (as in the paper,
    // where FS/WEB lead); the heavy group hovers near parity at this scale.
    let light = pr_mean(|d| !d.heavy_overlap());
    assert!(light > 1.3, "full-scale light-group PR reduction too small (got {light:.2}x)");
    let all = pr_mean(|_| true);
    assert!(all > 1.05, "full-scale PR mean reduction too small (got {all:.2}x)");
    assert!(
        f15.mean_reduction() > 0.85,
        "full-scale mean reduction collapsed (got {:.2}x)",
        f15.mean_reduction()
    );
}

#[test]
fn fig16_hcg_provides_most_of_the_benefit() {
    let h = harness();
    let f16 = figures::fig16(&h);
    assert!(
        f16.mean_hcg_speedup() > 1.15,
        "hardware chain generation must speed up software GLA (got {:.2}x)",
        f16.mean_hcg_speedup()
    );
    assert!(
        f16.mean_cp_speedup() > 1.0,
        "the chain-driven prefetcher must add further speedup (got {:.2}x)",
        f16.mean_cp_speedup()
    );
    // Deviation note: the paper attributes 92% of the ablation benefit to
    // the HCG; in this model the decoupled data loading (CP) carries a
    // larger share because the software baseline's dominant cost is its
    // serially-dependent indirect loads rather than chain generation
    // proper. Recorded in EXPERIMENTS.md.
}

#[test]
fn fig22_chgraph_wins_even_with_preprocessing() {
    // Preprocessing amortizes with input size; at reduced scale it weighs
    // disproportionately, so the strong claim is asserted on the heaviest
    // all-active workload and the lenient bound on the mean.
    let h = harness();
    let f22 = figures::fig22(&h);
    assert!(
        f22.mean_total_speedup() > 0.75,
        "end-to-end mean collapsed (got {:.2}x)",
        f22.mean_total_speedup()
    );
    let pr_web = f22
        .cells
        .iter()
        .find(|c| c.0 == Workload::Pr && c.1 == Dataset::WebTrackers)
        .expect("cell exists")
        .2;
    assert!(pr_web > 1.2, "PR on WEB must win end-to-end incl. preprocessing (got {pr_web:.2}x)");
}

/// Full-scale counterpart (run with `-- --ignored`).
#[test]
#[ignore = "full-scale run (~minutes); the default suite asserts at reduced scale"]
fn fig22_full_scale_total_speedup() {
    let h = Harness::new(Scale::FULL);
    let f22 = figures::fig22(&h);
    let pr_mean: f64 = {
        let cells: Vec<f64> =
            f22.cells.iter().filter(|c| c.0 == Workload::Pr).map(|c| c.2).collect();
        cells.iter().sum::<f64>() / cells.len() as f64
    };
    assert!(pr_mean > 1.25, "full-scale PR end-to-end speedup too small (got {pr_mean:.2}x)");
}

#[test]
fn fig23_prefetcher_helps_less_than_chgraph() {
    let h = harness();
    let f23 = figures::fig23(&h);
    for &(w, s) in &f23.speedups {
        assert!(s > 1.0, "{w}: ChGraph must beat the event-driven prefetcher (got {s:.2}x)");
    }
}

#[test]
fn fig24_reordering_does_not_pay_off_end_to_end() {
    let h = harness();
    let f24 = figures::fig24(&h);
    for &(ds, hygra_reorder, chgraph, _chg_reorder) in &f24.cells {
        assert!(
            chgraph > hygra_reorder,
            "{ds}: ChGraph must beat Hygra+Reordering end-to-end ({chgraph:.2}x vs {hygra_reorder:.2}x)"
        );
    }
}

#[test]
fn fig25_generality_chgraph_beats_ligra_on_graphs() {
    let h = harness();
    let f25 = figures::fig25(&h);
    assert!(
        f25.mean_vs_ligra() > 1.3,
        "ChGraph must beat the index-ordered graph baseline (paper 2.13x; got {:.2}x)",
        f25.mean_vs_ligra()
    );
}

#[test]
fn engine_reports_are_consistent() {
    let h = harness();
    let chg = h.report(Dataset::LiveJournal, Workload::Pr, System::ChGraph);
    let engine = chg.engine.expect("ChGraph reports engine stats");
    assert!(engine.chains_generated > 0);
    assert!(
        engine.tuples_delivered as usize >= h.graph(Dataset::LiveJournal).num_bipartite_edges()
    );
    assert!(engine.hcg_cycles > 0 && engine.cp_cycles > 0);
}
