//! End-to-end tests of the serving layer: protocol round-trips (including
//! fault-injected frames), artifact-LRU behavior, result identity between
//! the daemon path and direct library execution, backpressure, and
//! graceful drain. The hard guarantees from DESIGN.md §"Serving layer":
//!
//! - a second identical request is served from the artifact LRU (counter
//!   increments, no rebuild),
//! - a served result is byte-identical to direct library execution,
//! - a full queue yields a structured `overloaded` rejection, not a hang,
//! - shutdown drains in-flight requests and replies to all of them.

use chg_bench::faultutil::{Fault, FaultReader};
use chg_serve::proto::{self, fingerprint_report};
use chg_serve::{
    Client, ClientError, ProtoError, Request, Response, RunRequest, ServeConfig, Server,
};
use hyperalgos::{try_run_workload, Workload};
use hypergraph::datasets::Dataset;
use proptest::prelude::*;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const SCALE: f64 = 0.02;

/// Starts an in-process service, returning its address, a shutdown closure
/// (drains and joins), and the server thread handle.
fn start(
    cfg: ServeConfig,
) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<chg_serve::StatsReport>>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect_ready(addr, Duration::from_secs(10)).expect("service becomes ready")
}

fn base_request() -> RunRequest {
    let mut req = RunRequest::new("pr", "chgraph", "LJ");
    req.scale = SCALE;
    req.iters = Some(4);
    req
}

/// Polls the service until `pred` holds on a stats snapshot (or panics at
/// the deadline) — the deterministic way to sequence multi-connection
/// scenarios without sleeping blind.
fn wait_stats(addr: SocketAddr, what: &str, pred: impl Fn(&chg_serve::StatsReport) -> bool) {
    let mut client = connect(addr);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().expect("stats");
        if pred(&stats) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------------
// (a) + (b): LRU reuse and result identity
// ---------------------------------------------------------------------------

#[test]
fn second_identical_request_hits_the_lru_with_identical_result() {
    let (addr, handle) = start(ServeConfig { workers: 1, ..ServeConfig::default() });
    let mut client = connect(addr);

    let first = client.run(base_request()).expect("first run");
    assert_eq!(first.artifact_source.as_str(), "built", "cold store must build");

    let before = client.stats().expect("stats").artifacts;
    let second = client.run(base_request()).expect("second run");
    let after = client.stats().expect("stats").artifacts;

    // The artifact came from the LRU and the hit counter moved.
    assert_eq!(second.artifact_source.as_str(), "lru-hit");
    assert_eq!(after.oag_hits, before.oag_hits + 1, "second request must count as an LRU hit");
    assert_eq!(after.oag_misses, before.oag_misses, "second request must not rebuild");

    // Identical result, not merely a similar one.
    assert_eq!(first.fingerprint, second.fingerprint);
    assert_eq!(first.cycles, second.cycles);
    assert_eq!(first.iterations, second.iterations);

    // (b) The served result is byte-identical to direct library execution:
    // same config knobs, no daemon, no cache.
    let g = chg_bench::load_scaled(Dataset::LiveJournal, chg_bench::Scale(SCALE));
    let cfg = chgraph::RunConfig::new().with_oag_build_threads(1).with_max_iterations(4);
    let direct = try_run_workload(Workload::Pr, &chgraph::ChGraphRuntime::new(), &g, &cfg)
        .expect("direct run");
    assert_eq!(
        first.fingerprint,
        format!("{:016x}", fingerprint_report(&direct)),
        "daemon result must be byte-identical to the direct library path"
    );
    assert_eq!(first.cycles, direct.cycles);

    let mut closer = connect(addr);
    closer.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

// ---------------------------------------------------------------------------
// (c): backpressure is a structured rejection, not a hang
// ---------------------------------------------------------------------------

#[test]
fn full_queue_rejects_with_overloaded() {
    // One worker, one queue slot: A executes, B occupies the slot, C must
    // be rejected. The `repeat` knob keeps A/B busy long enough that the
    // stats-polled sequencing below is deterministic, not timing-lucky.
    let cfg = ServeConfig { workers: 1, queue_capacity: 1, ..ServeConfig::default() };
    let (addr, handle) = start(cfg);

    // Warm the artifact store so A/B's occupancy is pure execution time.
    connect(addr).run(base_request()).expect("warmup");

    let heavy = || {
        let mut req = base_request();
        req.repeat = 120;
        req
    };
    let outcome: (Result<_, ClientError>, Result<_, ClientError>, Result<_, ClientError>) =
        std::thread::scope(|s| {
            let a = s.spawn(move || connect(addr).run(heavy()));
            // A is in flight once the queue has drained back to depth 1
            // (pop happens immediately with an idle worker).
            wait_stats(addr, "A in flight", |st| st.queue_depth == 1);
            let b = s.spawn(move || connect(addr).run(heavy()));
            wait_stats(addr, "B queued", |st| st.queue_depth == 2);
            // C: worker busy with A, queue full with B -> immediate reject.
            let started = Instant::now();
            let c = connect(addr).run(heavy());
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "rejection must be prompt, not a hang"
            );
            (a.join().expect("A thread"), b.join().expect("B thread"), c)
        });

    let (a, b, c) = outcome;
    assert!(a.is_ok(), "A must complete: {a:?}");
    assert!(b.is_ok(), "B must complete: {b:?}");
    match c {
        Err(ClientError::Overloaded { queue_capacity, .. }) => assert_eq!(queue_capacity, 1),
        other => panic!("C must be rejected with Overloaded, got {other:?}"),
    }

    let stats = connect(addr).stats().expect("stats");
    assert_eq!(stats.requests.rejected_overload, 1);

    let mut closer = connect(addr);
    closer.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

// ---------------------------------------------------------------------------
// (d): shutdown drains in-flight work
// ---------------------------------------------------------------------------

#[test]
fn shutdown_drains_in_flight_requests() {
    let cfg = ServeConfig { workers: 1, ..ServeConfig::default() };
    let (addr, handle) = start(cfg);
    connect(addr).run(base_request()).expect("warmup");

    let heavy = {
        let mut req = base_request();
        req.repeat = 120;
        req
    };
    let in_flight = std::thread::spawn(move || connect(addr).run(heavy));
    wait_stats(addr, "heavy request in flight", |st| st.queue_depth == 1);

    // Trigger drain while the heavy request is mid-execution.
    let mut closer = connect(addr);
    closer.shutdown().expect("shutdown ack");

    // The in-flight request still completes and gets its reply.
    let result = in_flight.join().expect("client thread").expect("drained run must succeed");
    assert!(!result.fingerprint.is_empty());

    // The server exits cleanly and its final snapshot saw the request.
    let stats = handle.join().expect("server thread").expect("clean exit");
    assert!(stats.requests.ok >= 2, "warmup + drained heavy request: {:?}", stats.requests);

    // New connections are refused once the listener is down.
    assert!(
        Client::connect(addr).and_then(|mut c| c.ping()).is_err(),
        "a drained server must not accept new work"
    );
}

#[test]
fn runs_after_shutdown_are_rejected_as_draining() {
    let (addr, handle) = start(ServeConfig { workers: 1, ..ServeConfig::default() });
    let mut client = connect(addr);
    // Same connection: shutdown ack, then the server replies to nothing
    // further on it — but a pre-shutdown-opened second connection gets the
    // typed shutting-down error for a run submitted during the drain window.
    let mut second = connect(addr);
    client.shutdown().expect("shutdown ack");
    match second.run(base_request()) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "shutting-down"),
        // The drain can finish (and close the socket) before the request
        // lands; that is also a non-hang outcome.
        Err(ClientError::Proto(_)) => {}
        other => panic!("expected shutting-down or closed socket, got {other:?}"),
    }
    handle.join().expect("server thread").expect("clean exit");
}

// ---------------------------------------------------------------------------
// Protocol robustness: fault-injected frames
// ---------------------------------------------------------------------------

fn encode_request(req: &Request) -> Vec<u8> {
    let mut bytes = Vec::new();
    proto::send(&mut bytes, req).expect("encode");
    bytes
}

#[test]
fn bit_flipped_frames_are_rejected_not_misdecoded() {
    let frame = encode_request(&Request::Run(base_request()));
    for offset in 0..frame.len() as u64 {
        let mut reader = FaultReader::new(&frame[..], Fault::FlipBit { offset, bit: 2 });
        let decoded: Result<Request, _> = proto::recv(&mut reader);
        assert!(
            decoded.is_err(),
            "a flipped bit at offset {offset} must fail decoding, not pass silently"
        );
    }
}

#[test]
fn truncated_frames_fail_cleanly_at_every_length() {
    let frame = encode_request(&Request::Stats);
    for offset in 0..frame.len() as u64 {
        let mut reader = FaultReader::new(&frame[..], Fault::Truncate { offset });
        let decoded: Result<Request, _> = proto::recv(&mut reader);
        match decoded {
            Err(ProtoError::Io(_))
            | Err(ProtoError::Magic)
            | Err(ProtoError::ChecksumMismatch { .. }) => {}
            other => panic!("truncation at {offset} must be a framing error, got {other:?}"),
        }
    }
}

#[test]
fn short_reads_do_not_corrupt_frames() {
    // Single-byte reads past offset 3 stress every read_exact loop; the
    // frame must still decode to the identical value.
    let req = Request::Run(base_request());
    let frame = encode_request(&req);
    let mut reader = FaultReader::new(&frame[..], Fault::Short { offset: 3 });
    let decoded: Request = proto::recv(&mut reader).expect("short reads are not errors");
    assert_eq!(decoded, req);
}

#[test]
fn garbage_on_the_socket_gets_a_typed_protocol_error() {
    let (addr, handle) = start(ServeConfig { workers: 1, ..ServeConfig::default() });
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write garbage");
        let reply: Result<Response, _> = proto::recv(&mut raw);
        match reply {
            Ok(Response::Error { kind, .. }) => assert_eq!(kind, "protocol"),
            other => panic!("expected a protocol error response, got {other:?}"),
        }
    }
    wait_stats(addr, "protocol error counted", |st| st.requests.protocol_errors == 1);
    let mut closer = connect(addr);
    closer.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

// ---------------------------------------------------------------------------
// Connection hardening: slow-loris, idempotent replays, degraded mode
// ---------------------------------------------------------------------------

#[test]
fn slow_loris_drip_hits_the_frame_deadline_and_frees_the_worker() {
    use std::io::Write;
    let cfg = ServeConfig {
        workers: 1,
        // Quiet period far above the drip interval: only the *total* frame
        // deadline can fire, which is exactly the slow-loris guard.
        read_timeout: Duration::from_secs(5),
        frame_deadline: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(cfg);

    let frame = encode_request(&Request::Ping);
    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    raw.set_nodelay(true).ok();
    // Drip one byte per 100 ms: each read stays inside the quiet period,
    // but the frame cannot complete inside the 500 ms deadline.
    for byte in frame.iter().take(12) {
        if raw.write_all(&[*byte]).is_err() {
            break; // server already closed on us — also a pass condition
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    // The server must have sent a typed timeout error before closing.
    raw.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
    let reply: Result<Response, _> = proto::recv(&mut raw);
    match reply {
        Ok(Response::Error { kind, .. }) => assert_eq!(kind, "timeout"),
        other => panic!("expected a typed timeout error, got {other:?}"),
    }
    // ... and then nothing more: the connection is closed.
    let eof: Result<Response, _> = proto::recv(&mut raw);
    assert!(eof.is_err(), "connection must be closed after the timeout reply");
    drop(raw);

    // The close is tallied under frame-deadline, and the worker is free:
    // a fresh connection completes a real run.
    wait_stats(addr, "frame-deadline close counted", |st| st.closes.frame_deadline == 1);
    let result = connect(addr).run(base_request()).expect("fresh connection must succeed");
    assert!(!result.fingerprint.is_empty());

    let mut closer = connect(addr);
    closer.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn duplicate_request_key_executes_once_with_identical_replies() {
    let (addr, handle) = start(ServeConfig { workers: 1, ..ServeConfig::default() });
    let mut req = base_request();
    req.request_key = Some("idem-1".into());

    let mut client = connect(addr);
    let first = client.run(req.clone()).expect("first run");
    let replay = client.run(req.clone()).expect("replayed run");
    // Two identical replies...
    assert_eq!(first.fingerprint, replay.fingerprint);
    assert_eq!(first.cycles, replay.cycles);
    assert_eq!(first.iterations, replay.iterations);
    // ... from one execution: the replay came out of the single-flight
    // slot, not the worker pool.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests.deduped, 1);
    assert_eq!(stats.requests.ok, 1, "the key must execute exactly once");
    assert!(stats.requests.received >= 2);

    // The same key with a *different* request body is a bad request, never
    // a silently wrong cached result.
    let mut mismatched = base_request();
    mismatched.request_key = Some("idem-1".into());
    mismatched.iters = Some(5);
    match client.run(mismatched) {
        Err(ClientError::Server { kind, message }) => {
            assert_eq!(kind, "bad-request");
            assert!(message.contains("request_key"), "message should name the key: {message}");
        }
        other => panic!("expected bad-request for a reused key, got {other:?}"),
    }

    let mut closer = connect(addr);
    closer.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn concurrent_duplicate_request_is_single_flighted() {
    let (addr, handle) = start(ServeConfig { workers: 2, ..ServeConfig::default() });
    connect(addr).run(base_request()).expect("warmup");

    let keyed_heavy = || {
        let mut req = base_request();
        req.repeat = 60;
        req.request_key = Some("single-flight".into());
        req
    };
    let (a, b) = std::thread::scope(|s| {
        let a = s.spawn(move || connect(addr).run(keyed_heavy()));
        wait_stats(addr, "owner in flight", |st| st.queue_depth >= 1);
        // Same key from a second connection: follower, not a second run.
        // (Even if the owner already finished, the completed slot lingers
        // and still answers — either way, one execution.)
        let b = s.spawn(move || connect(addr).run(keyed_heavy()));
        wait_stats(addr, "follower deduped", |st| st.requests.deduped == 1);
        (a.join().expect("owner thread"), b.join().expect("follower thread"))
    });
    let (owner, follower) = (a.expect("owner run"), b.expect("follower run"));
    assert_eq!(owner.fingerprint, follower.fingerprint);
    assert_eq!(owner.cycles, follower.cycles);

    let stats = connect(addr).stats().expect("stats");
    assert_eq!(stats.requests.deduped, 1);
    assert_eq!(stats.requests.ok, 2, "warmup + one keyed execution, not two");

    let mut closer = connect(addr);
    closer.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn degraded_mode_sheds_with_a_retry_hint() {
    // Threshold zero: shed whenever a backlog exists — the deterministic
    // way to reach degraded mode without timing games.
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        shed_queue_wait: Some(Duration::ZERO),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(cfg);
    connect(addr).run(base_request()).expect("warmup");

    let heavy = || {
        let mut req = base_request();
        req.repeat = 120;
        req
    };
    let (a, b) = std::thread::scope(|s| {
        let a = s.spawn(move || connect(addr).run(heavy()));
        wait_stats(addr, "A in flight", |st| st.queue_depth == 1);
        let b = s.spawn(move || connect(addr).run(heavy()));
        wait_stats(addr, "B queued behind A", |st| st.queue_depth == 2);
        // Backlog exists (B is queued) -> degraded mode sheds immediately,
        // with a pacing hint.
        match connect(addr).run(base_request()) {
            Err(ClientError::Overloaded { retry_after_ms, .. }) => {
                assert!(retry_after_ms >= 1, "shed reply must carry a retry hint");
            }
            other => panic!("expected a shed Overloaded reply, got {other:?}"),
        }
        (a.join().expect("A thread"), b.join().expect("B thread"))
    });
    assert!(a.is_ok() && b.is_ok(), "queued work still completes while shedding");

    let stats = connect(addr).stats().expect("stats");
    assert_eq!(stats.requests.shed, 1);
    // The queue-wait histogram is live in the stats endpoint.
    assert!(
        stats.queue_wait_latency.count >= 3,
        "warmup + A + B queue waits must be recorded: {:?}",
        stats.queue_wait_latency
    );

    let mut closer = connect(addr);
    closer.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

// ---------------------------------------------------------------------------
// Property tests: wire round-trips for arbitrary field values
// ---------------------------------------------------------------------------

/// `Option<T>` via `(present, value)` — the vendored proptest has no
/// `prop::option`.
fn opt<T>(present: bool, value: T) -> Option<T> {
    present.then_some(value)
}

fn arb_run_request() -> impl Strategy<Value = RunRequest> {
    const WORKLOADS: [&str; 4] = ["pr", "bfs", "sssp", "nonsense"];
    const RUNTIMES: [&str; 4] = ["chgraph", "hygra", "gla", "weird"];
    const DATASETS: [&str; 4] = ["LJ", "WEB", "FS", "??"];
    (
        (0usize..4, 0usize..4, 0usize..4, 1u64..4000),
        (any::<bool>(), 1usize..64, any::<bool>(), 0u32..16),
        (
            (any::<bool>(), 1usize..64),
            (any::<bool>(), 1usize..1000),
            (any::<bool>(), any::<u64>()),
            (any::<bool>(), 1u64..600_000),
        ),
        (any::<bool>(), any::<bool>(), 1u32..1000, any::<bool>()),
    )
        .prop_map(
            |(
                (w, r, d, scale_millis),
                (has_cores, cores, has_wmin, wmin),
                ((has_dmax, dmax), (has_iters, iters), (has_mc, max_cycles), (has_mw, max_wall)),
                (self_check, validate, repeat, has_key),
            )| {
                let mut req = RunRequest::new(WORKLOADS[w], RUNTIMES[r], DATASETS[d]);
                req.scale = scale_millis as f64 / 1000.0;
                req.cores = opt(has_cores, cores);
                req.wmin = opt(has_wmin, wmin);
                req.dmax = opt(has_dmax, dmax);
                req.iters = opt(has_iters, iters);
                req.max_cycles = opt(has_mc, max_cycles.max(1));
                req.max_wall_ms = opt(has_mw, max_wall);
                req.self_check = self_check;
                req.validate = validate;
                req.repeat = repeat;
                req.request_key = opt(has_key, format!("key-{repeat:04x}"));
                req
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_run_request_round_trips_the_wire(req in arb_run_request()) {
        let frame = encode_request(&Request::Run(req.clone()));
        let decoded: Request = proto::recv(&mut &frame[..]).expect("decode");
        prop_assert_eq!(decoded, Request::Run(req));
    }

    #[test]
    fn any_single_bit_flip_is_detected(req in arb_run_request(), bit in 0u32..8, pick in any::<usize>()) {
        let frame = encode_request(&Request::Run(req));
        let offset = (pick % frame.len()) as u64;
        let mut reader = FaultReader::new(&frame[..], Fault::FlipBit { offset, bit: bit as u8 });
        let decoded: Result<Request, _> = proto::recv(&mut reader);
        prop_assert!(decoded.is_err(), "flip at byte {} bit {} must not decode", offset, bit);
    }
}
