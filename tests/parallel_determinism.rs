//! The parallel execution layer's hard invariant: every report, figure and
//! OAG is **bit-identical** between `--threads 1` and `--threads N`
//! (DESIGN.md §"Parallel evaluation"). These tests pin the invariant at
//! every layer — OAG construction, prepared-artifact reuse, and the
//! fanned-out harness grid.

use chg_bench::figures::{Harness, System};
use chg_bench::{load_scaled, Scale};
use chgraph::{ChGraphRuntime, GlaRuntime, PreparedOags, RunConfig, Runtime};
use hyperalgos::Workload;
use hypergraph::datasets::Dataset;
use hypergraph::Side;
use oag::OagConfig;
use proptest::prelude::*;

/// Exact binary serialization of an OAG, for byte-level comparison.
fn oag_bytes(oag: &oag::Oag) -> Vec<u8> {
    let mut buf = Vec::new();
    oag::io::write_binary(oag, &mut buf).expect("in-memory write cannot fail");
    buf
}

#[test]
fn parallel_oag_build_is_byte_identical() {
    let cfg = OagConfig::new();
    for ds in [Dataset::LiveJournal, Dataset::WebTrackers] {
        let g = load_scaled(ds, Scale(0.05));
        for side in [Side::Hyperedge, Side::Vertex] {
            let (serial, serial_stats) = cfg.build_with_stats_threads(&g, side, 1);
            for threads in [2, 3, 8] {
                let (parallel, parallel_stats) = cfg.build_with_stats_threads(&g, side, threads);
                assert_eq!(
                    oag_bytes(&serial),
                    oag_bytes(&parallel),
                    "{ds:?}/{side:?}: {threads}-thread OAG differs from serial"
                );
                assert_eq!(serial_stats, parallel_stats, "{ds:?}/{side:?} stats diverged");
            }
        }
    }
}

#[test]
fn harness_grid_is_identical_serial_vs_parallel() {
    let datasets = [Dataset::LiveJournal, Dataset::WebTrackers];
    let workloads = [Workload::Cc, Workload::Bfs];
    let systems = [System::Hygra, System::ChGraph];
    let serial = Harness::new(Scale(0.05));
    let parallel = Harness::new(Scale(0.05)).with_threads(8);
    let jobs: Vec<_> = datasets
        .into_iter()
        .flat_map(|ds| {
            workloads
                .into_iter()
                .flat_map(move |w| systems.into_iter().map(move |sys| (ds, w, sys)))
        })
        .collect();
    parallel.prefetch(jobs.iter().copied());
    for (ds, w, sys) in jobs {
        assert_eq!(
            *serial.report(ds, w, sys),
            *parallel.report(ds, w, sys),
            "{ds:?}/{w:?}/{sys:?}: parallel harness diverged from serial"
        );
    }
}

/// The determinism invariant extends to the *degraded* path: a grid with
/// one persistently panicking cell completes, reports exactly that cell as
/// failed after its retry, and produces byte-identical reports for every
/// other cell versus a fault-free run.
#[test]
fn degraded_grid_is_identical_to_healthy_grid_on_surviving_cells() {
    let datasets = [Dataset::LiveJournal, Dataset::WebTrackers];
    let workloads = [Workload::Cc, Workload::Bfs];
    let systems = [System::Hygra, System::ChGraph];
    let jobs: Vec<_> = datasets
        .into_iter()
        .flat_map(|ds| {
            workloads
                .into_iter()
                .flat_map(move |w| systems.into_iter().map(move |sys| (ds, w, sys)))
        })
        .collect();
    let bad = (Dataset::WebTrackers, Workload::Bfs, System::ChGraph);

    let healthy = Harness::new(Scale(0.05)).with_threads(8);
    let healthy_outcome = healthy.prefetch(jobs.iter().copied());
    assert!(healthy_outcome.is_complete(), "control run must be clean");

    let degraded = Harness::new(Scale(0.05)).with_threads(8).with_fault_hook(move |job| {
        if job == bad {
            panic!("injected persistent fault");
        }
    });
    let outcome = degraded.prefetch(jobs.iter().copied());
    assert_eq!(outcome.failed.len(), 1, "exactly the injected cell fails: {:?}", outcome.failed);
    assert_eq!(outcome.failed[0].job, bad);
    assert_eq!(outcome.failed[0].attempts, 2, "the cell was retried once");
    assert_eq!(outcome.completed, jobs.len() - 1);

    for &(ds, w, sys) in jobs.iter().filter(|&&j| j != bad) {
        let clean = healthy.report(ds, w, sys);
        let survived = degraded.report(ds, w, sys);
        assert_eq!(*clean, *survived, "{ds:?}/{w:?}/{sys:?} diverged in the degraded grid");
        // Figures are emitted from Display, so pin byte identity of the
        // rendered form too.
        assert_eq!(
            format!("{clean}"),
            format!("{survived}"),
            "{ds:?}/{w:?}/{sys:?} rendered differently in the degraded grid"
        );
    }
}

#[test]
fn prepared_oags_reuse_is_bit_identical_to_fresh_builds() {
    let cfg = RunConfig::new();
    let g = load_scaled(Dataset::ComOrkut, Scale(0.05));
    let prepared = PreparedOags::build(&g, &cfg);
    for runtime in [&GlaRuntime as &dyn Runtime, &ChGraphRuntime::new()] {
        for w in [Workload::Cc, Workload::Bfs] {
            let fresh = hyperalgos::run_workload(w, runtime, &g, &cfg);
            let reused = hyperalgos::run_workload_prepared(w, runtime, &g, &cfg, Some(&prepared));
            assert_eq!(
                fresh,
                reused,
                "{}/{w:?}: prepared reuse changed the report",
                runtime.name()
            );
        }
    }
}

#[test]
fn mismatched_prepared_oags_fall_back_to_fresh_build() {
    let cfg = RunConfig::new();
    let g = load_scaled(Dataset::LiveJournal, Scale(0.05));
    let stale = PreparedOags::build(&g, &cfg.with_oag(OagConfig::new().with_w_min(7)));
    let fresh = hyperalgos::run_workload(Workload::Cc, &ChGraphRuntime::new(), &g, &cfg);
    let guarded = hyperalgos::run_workload_prepared(
        Workload::Cc,
        &ChGraphRuntime::new(),
        &g,
        &cfg,
        Some(&stale),
    );
    assert_eq!(fresh, guarded, "config-mismatched PreparedOags must be ignored");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel OAG construction equals serial for arbitrary small
    /// hypergraphs, both sides, any worker count.
    #[test]
    fn parallel_build_equals_serial_on_arbitrary_hypergraphs(
        nv in 50usize..160,
        nh in 1usize..80,
        seed in 0u64..1_000_000,
        threads in 2usize..9,
        w_min in 1u32..4,
    ) {
        let g = hypergraph::generate::GeneratorConfig::new(nv, nh).with_seed(seed).generate();
        let cfg = OagConfig::new().with_w_min(w_min);
        for side in [Side::Hyperedge, Side::Vertex] {
            let (serial, serial_stats) = cfg.build_with_stats_threads(&g, side, 1);
            let (parallel, parallel_stats) = cfg.build_with_stats_threads(&g, side, threads);
            prop_assert_eq!(&serial, &parallel);
            prop_assert_eq!(oag_bytes(&serial), oag_bytes(&parallel));
            prop_assert_eq!(serial_stats, parallel_stats);
        }
    }
}
