//! End-to-end proof of every fault-recovery path (DESIGN.md §"Fault
//! tolerance"): deterministic I/O faults — truncation, bit flips, short
//! reads, injected `io::Error`s, torn writes — against the v2 binary
//! formats and the preprocess cache, plus panic isolation in the figure
//! harness. Every scenario must end in either a typed error or a
//! transparent recomputation with identical results; no fault may panic,
//! and no fault may produce silently wrong data.

use chg_bench::faultutil::{Fault, FaultReader, FaultWriter};
use chg_bench::figures::{Harness, System};
use chg_bench::{load_scaled, PreprocessCache, Scale};
use hyperalgos::Workload;
use hypergraph::datasets::Dataset;
use hypergraph::{Hypergraph, Side};
use oag::{Oag, OagConfig};
use proptest::prelude::*;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

fn sample_graph() -> Hypergraph {
    hypergraph::generate::GeneratorConfig::new(300, 200).with_seed(8).generate()
}

fn graph_bytes(g: &Hypergraph) -> Vec<u8> {
    let mut buf = Vec::new();
    hypergraph::io::write_binary(g, &mut buf).expect("in-memory write cannot fail");
    buf
}

fn sample_oag() -> Oag {
    OagConfig::new().with_w_min(2).build(&sample_graph(), Side::Hyperedge)
}

fn oag_bytes(oag: &Oag) -> Vec<u8> {
    let mut buf = Vec::new();
    oag::io::write_binary(oag, &mut buf).expect("in-memory write cannot fail");
    buf
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chg-fault-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// Typed errors for every byte-level corruption of the binary formats.
// ---------------------------------------------------------------------------

#[test]
fn zero_length_files_are_typed_errors() {
    assert!(hypergraph::io::read_binary(&[][..]).is_err());
    assert!(oag::io::read_binary(&[][..]).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a hypergraph blob at any offset yields a typed error —
    /// never a panic, never a silently wrong graph.
    #[test]
    fn truncated_hypergraph_always_errors(cut in 0usize..10_000) {
        let buf = graph_bytes(&sample_graph());
        let cut = cut % buf.len();
        let r = FaultReader::new(&buf[..], Fault::Truncate { offset: cut as u64 });
        prop_assert!(hypergraph::io::read_binary(r).is_err(), "cut at {cut} must error");
    }

    /// Flipping any single bit anywhere in a v2 hypergraph blob is caught
    /// (header validation or the trailing checksum).
    #[test]
    fn bitflipped_hypergraph_always_errors(offset in 0usize..10_000, bit in 0u32..8) {
        let buf = graph_bytes(&sample_graph());
        let offset = offset % buf.len();
        let r = FaultReader::new(&buf[..], Fault::FlipBit { offset: offset as u64, bit: bit as u8 });
        prop_assert!(
            hypergraph::io::read_binary(r).is_err(),
            "flip of bit {bit} at byte {offset} must be detected"
        );
    }

    /// Same for the OAG format: any truncation errors.
    #[test]
    fn truncated_oag_always_errors(cut in 0usize..10_000) {
        let buf = oag_bytes(&sample_oag());
        let cut = cut % buf.len();
        let r = FaultReader::new(&buf[..], Fault::Truncate { offset: cut as u64 });
        prop_assert!(oag::io::read_binary(r).is_err(), "cut at {cut} must error");
    }

    /// Same for the OAG format: any single-bit flip is detected.
    #[test]
    fn bitflipped_oag_always_errors(offset in 0usize..10_000, bit in 0u32..8) {
        let buf = oag_bytes(&sample_oag());
        let offset = offset % buf.len();
        let r = FaultReader::new(&buf[..], Fault::FlipBit { offset: offset as u64, bit: bit as u8 });
        prop_assert!(
            oag::io::read_binary(r).is_err(),
            "flip of bit {bit} at byte {offset} must be detected"
        );
    }
}

#[test]
fn short_reads_degrade_nothing() {
    let g = sample_graph();
    let buf = graph_bytes(&g);
    let r = FaultReader::new(&buf[..], Fault::Short { offset: 10 });
    assert_eq!(hypergraph::io::read_binary(r).expect("short reads are not corruption"), g);

    let oag = sample_oag();
    let buf = oag_bytes(&oag);
    let r = FaultReader::new(&buf[..], Fault::Short { offset: 10 });
    assert_eq!(oag::io::read_binary(r).expect("short reads are not corruption"), oag);
}

#[test]
fn injected_io_errors_surface_as_io_variants() {
    let buf = graph_bytes(&sample_graph());
    let r = FaultReader::new(&buf[..], Fault::Error { offset: 20 });
    assert!(matches!(
        hypergraph::io::read_binary(r).unwrap_err(),
        hypergraph::io::ReadHypergraphError::Io(_)
    ));

    let buf = oag_bytes(&sample_oag());
    let r = FaultReader::new(&buf[..], Fault::Error { offset: 20 });
    assert!(matches!(oag::io::read_binary(r).unwrap_err(), oag::io::ReadOagError::Io(_)));
}

#[test]
fn failing_writes_are_propagated_not_panicked() {
    let g = sample_graph();
    let mut w = FaultWriter::new(Vec::new(), Fault::Error { offset: 32 });
    assert!(hypergraph::io::write_binary(&g, &mut w).is_err());

    let oag = sample_oag();
    let mut w = FaultWriter::new(Vec::new(), Fault::Error { offset: 32 });
    assert!(oag::io::write_binary(&oag, &mut w).is_err());
}

#[test]
fn torn_writes_are_caught_on_read_back() {
    // A writer that silently drops the tail (crash mid-write, full disk
    // with buggy firmware, ...) reports success — but the checksum makes
    // the damage visible the moment the file is read.
    let g = sample_graph();
    let full = graph_bytes(&g);
    for cut in [8u64, full.len() as u64 / 2, full.len() as u64 - 3] {
        let mut w = FaultWriter::new(Vec::new(), Fault::Truncate { offset: cut });
        hypergraph::io::write_binary(&g, &mut w).expect("torn writer pretends success");
        w.flush().unwrap();
        let torn = w.into_inner();
        assert!(torn.len() < full.len());
        assert!(hypergraph::io::read_binary(&torn[..]).is_err(), "torn at {cut} must error");
    }
}

// ---------------------------------------------------------------------------
// v1 compatibility: version-gated reads of the checksum-less legacy format.
// ---------------------------------------------------------------------------

#[test]
fn legacy_v1_blobs_read_identically() {
    let g = sample_graph();
    let v1 = hypergraph::io::downgrade_binary_to_v1(&graph_bytes(&g)).expect("v2 blob");
    assert_eq!(hypergraph::io::read_binary(&v1[..]).unwrap(), g);

    let oag = sample_oag();
    let v1 = oag::io::downgrade_binary_to_v1(&oag_bytes(&oag)).expect("v2 blob");
    assert_eq!(oag::io::read_binary(&v1[..]).unwrap(), oag);
}

#[test]
fn v1_cache_entries_still_hit() {
    // A cache directory written before the v2 bump (v1 entry framing with
    // v1 inner blobs) must keep hitting after an upgrade.
    let dir = tmpdir("v1compat");
    let cache = PreprocessCache::new(&dir).unwrap();
    let g = load_scaled(Dataset::Friendster, Scale(0.05));
    cache.store_graph(Dataset::Friendster, Scale(0.05), &g);
    // Find the stored entry and rewrite it as v1 on disk.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "bin"))
        .expect("one stored graph entry");
    let v2 = std::fs::read(&entry).unwrap();
    let v1 = hypergraph::io::downgrade_binary_to_v1(&v2).expect("entry is a v2 graph blob");
    std::fs::write(&entry, &v1).unwrap();
    let hit = cache.load_graph(Dataset::Friendster, Scale(0.05)).expect("v1 entry must hit");
    assert_eq!(hit, g);
    assert_eq!(cache.quarantined(), 0, "a valid v1 entry is not corruption");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Cache self-healing: corruption is quarantined and recomputed with
// identical results.
// ---------------------------------------------------------------------------

#[test]
fn corrupt_cache_recomputes_identical_results() {
    let dir = tmpdir("heal");
    let ds = Dataset::LiveJournal;
    let job = (ds, Workload::Cc, System::ChGraph);

    // Run 1: populate the cache and record the clean report.
    let clean_report = {
        let cache = Arc::new(PreprocessCache::new(&dir).unwrap());
        let h = Harness::new(Scale(0.05)).with_cache(cache);
        h.report(job.0, job.1, job.2)
    };

    // Corrupt every cached entry on disk (graphs and OAGs alike).
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|x| x == "bin") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x20;
            std::fs::write(&path, &bytes).unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "run 1 must have populated the cache");

    // Run 2: every load detects the corruption, quarantines, recomputes —
    // and the result is bit-identical to the clean run.
    let cache = Arc::new(PreprocessCache::new(&dir).unwrap());
    let h = Harness::new(Scale(0.05)).with_cache(cache.clone());
    let healed_report = h.report(job.0, job.1, job.2);
    assert_eq!(*clean_report, *healed_report, "corruption may cost time, never correctness");
    assert_eq!(format!("{clean_report}"), format!("{healed_report}"));
    assert_eq!(cache.quarantined() as usize, corrupted, "every corrupt entry quarantined");
    assert_eq!(cache.hits(), 0, "no corrupt entry may ever count as a hit");

    // Run 3: the healed cache hits again.
    let cache = Arc::new(PreprocessCache::new(&dir).unwrap());
    let h = Harness::new(Scale(0.05)).with_cache(cache.clone());
    let rehit_report = h.report(job.0, job.1, job.2);
    assert_eq!(*clean_report, *rehit_report);
    assert!(cache.hits() > 0, "self-healed entries must hit on the next run");
    assert_eq!(cache.quarantined(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Harness panic isolation (the fault-injection hook).
// ---------------------------------------------------------------------------

#[test]
fn panicking_cell_yields_structured_error_not_abort() {
    let bad = (Dataset::WebTrackers, Workload::Bfs, System::Hygra);
    let h = Harness::new(Scale(0.05)).with_threads(4).with_fault_hook(move |job| {
        if job == bad {
            panic!("injected workload fault");
        }
    });
    let err = h.try_report(bad.0, bad.1, bad.2).expect_err("cell must fail");
    assert_eq!(err.job, bad);
    assert_eq!(err.attempts, 2, "one retry before reporting");
    assert!(err.message.contains("injected workload fault"));
    assert!(err.to_string().contains("Hygra"), "error names the cell: {err}");
    // The harness is still fully usable for other cells.
    let ok = h.try_report(Dataset::WebTrackers, Workload::Cc, System::Hygra);
    assert!(ok.is_ok(), "sibling cells are unaffected");
}

#[test]
fn grid_outcome_counts_match() {
    let bad = (Dataset::LiveJournal, Workload::Cc, System::Hygra);
    let h = Harness::new(Scale(0.05)).with_threads(3).with_fault_hook(move |job| {
        if job == bad {
            panic!("boom");
        }
    });
    let jobs = [
        bad,
        (Dataset::LiveJournal, Workload::Bfs, System::Hygra),
        (Dataset::LiveJournal, Workload::Cc, System::ChGraph),
    ];
    let outcome = h.prefetch(jobs);
    assert_eq!(outcome.completed, 2);
    assert_eq!(outcome.failed.len(), 1);
    assert!(!outcome.is_complete());
    assert_eq!(outcome.failed[0].job, bad);
}
