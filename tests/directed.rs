//! End-to-end directed-hypergraph semantics: `HF` flows only out of source
//! vertices and `VF` only into destination vertices, under every runtime.

use chgraph::{ChGraphRuntime, GlaRuntime, HygraRuntime, RunConfig, Runtime};
use hyperalgos::{Bfs, PageRank};
use hypergraph::directed::DirectedHypergraphBuilder;
use hypergraph::{Hypergraph, VertexId};

/// v0 -> h0 -> {v1, v2}; v2 -> h1 -> {v3}; v3 -> h2 -> {v0} (a cycle), plus
/// an edge v4 -> h3 -> {v0} that is *unreachable from* v0.
fn directed_example() -> Hypergraph {
    let mut b = DirectedHypergraphBuilder::new(5);
    b.add_hyperedge([0].map(VertexId::new), [1, 2].map(VertexId::new)).unwrap();
    b.add_hyperedge([2].map(VertexId::new), [3].map(VertexId::new)).unwrap();
    b.add_hyperedge([3].map(VertexId::new), [0].map(VertexId::new)).unwrap();
    b.add_hyperedge([4].map(VertexId::new), [0].map(VertexId::new)).unwrap();
    b.build()
}

#[test]
fn directed_bfs_respects_edge_direction() {
    let g = directed_example();
    let cfg = RunConfig::new().with_system(archsim::SystemConfig::scaled(2));
    for rt in [&HygraRuntime as &dyn Runtime, &GlaRuntime, &ChGraphRuntime::new()] {
        let r = rt.execute(&g, &Bfs::new(VertexId::new(0)), &cfg);
        let d = &r.state.vertex_value;
        assert_eq!(d[0], 0.0, "{}", rt.name());
        assert_eq!(d[1], 2.0, "{}: v1 is one hyperedge hop away", rt.name());
        assert_eq!(d[2], 2.0, "{}", rt.name());
        assert_eq!(d[3], 4.0, "{}: v3 via h1", rt.name());
        assert!(d[4].is_infinite(), "{}: v4 only points *into* the cycle", rt.name());
    }
}

#[test]
fn reverse_direction_is_not_reachable() {
    // v1 is a pure destination: BFS from v1 must reach nothing else.
    let g = directed_example();
    let cfg = RunConfig::new().with_system(archsim::SystemConfig::scaled(2));
    let r = HygraRuntime.execute(&g, &Bfs::new(VertexId::new(1)), &cfg);
    let reached = r.state.vertex_value.iter().filter(|d| d.is_finite()).count();
    assert_eq!(reached, 1, "only the source itself");
}

#[test]
fn directed_pagerank_uses_out_degrees() {
    let g = directed_example();
    let cfg = RunConfig::new().with_system(archsim::SystemConfig::scaled(2));
    let r = HygraRuntime.execute(&g, &PageRank::new(), &cfg);
    // Rank flows around the v0 -> v2 -> v3 -> v0 cycle and accumulates; the
    // pure source v4 keeps only base rank contributions through... v4 has no
    // incident *sourced-or-destination* role beyond sourcing h3, so it
    // receives nothing: its rank stays 0 after the first accumulator reset.
    assert_eq!(r.state.vertex_value[4], 0.0, "pure sources receive no rank");
    assert!(r.state.vertex_value[0] > 0.0, "cycle members accumulate rank");
    assert!(r.state.vertex_value.iter().all(|x| x.is_finite() && *x >= 0.0));
}

#[test]
fn directed_runtimes_agree() {
    // A larger random directed hypergraph: derive direction by splitting
    // each undirected hyperedge's incidence list in half.
    let und = hypergraph::generate::GeneratorConfig::new(600, 400).with_seed(13).generate();
    let mut b = DirectedHypergraphBuilder::new(und.num_vertices());
    for h in 0..und.num_hyperedges() as u32 {
        let vs = und.incidence(hypergraph::Side::Hyperedge, h);
        let mid = vs.len().div_ceil(2);
        b.add_hyperedge(
            vs[..mid].iter().map(|&v| VertexId::new(v)),
            vs[mid..].iter().map(|&v| VertexId::new(v)),
        )
        .unwrap();
    }
    let g = b.build();
    let cfg = RunConfig::new().with_system(archsim::SystemConfig::scaled(4));
    let src = hyperalgos::default_source(&g);
    let a = HygraRuntime.execute(&g, &Bfs::new(src), &cfg);
    let c = ChGraphRuntime::new().execute(&g, &Bfs::new(src), &cfg);
    assert_eq!(a.state.vertex_value, c.state.vertex_value);
    assert_eq!(a.state.hyperedge_value, c.state.hyperedge_value);
}
