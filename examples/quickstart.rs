//! Quickstart: build a hypergraph, run PageRank under the three systems,
//! and compare cycles and off-chip memory traffic.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chgraph::{ChGraphRuntime, GlaRuntime, HygraRuntime, RunConfig, Runtime};
use hyperalgos::PageRank;
use hypergraph::datasets::Dataset;

fn main() {
    // The paper's headline dataset (synthetic stand-in, deterministic).
    let g = Dataset::WebTrackers.load();
    println!(
        "Web-trackers stand-in: {} vertices, {} hyperedges, {} bipartite edges",
        g.num_vertices(),
        g.num_hyperedges(),
        g.num_bipartite_edges()
    );

    // Default machine: 16 cores, capacity-scaled caches (Table I latencies).
    let cfg = RunConfig::new();
    let pr = PageRank::new();

    let hygra = HygraRuntime.execute(&g, &pr, &cfg);
    let gla = GlaRuntime.execute(&g, &pr, &cfg);
    let chg = ChGraphRuntime::new().execute(&g, &pr, &cfg);

    println!(
        "\n{:<10} {:>14} {:>16} {:>10} {:>12}",
        "system", "cycles", "dram accesses", "speedup", "dram redux"
    );
    for r in [&hygra, &gla, &chg] {
        println!(
            "{:<10} {:>14} {:>16} {:>9.2}x {:>11.2}x",
            r.runtime,
            r.cycles,
            r.mem.main_memory_accesses(),
            r.speedup_over(&hygra),
            r.mem_reduction_over(&hygra),
        );
    }

    // The chain-driven schedules change only performance, never results.
    let diff = hygra
        .state
        .vertex_value
        .iter()
        .zip(&chg.state.vertex_value)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax |rank difference| Hygra vs ChGraph: {diff:.2e} (float-order noise only)");

    if let Some(engine) = chg.engine {
        println!(
            "engine: {} chains generated, {} tuples delivered through the bipartite-edge FIFO",
            engine.chains_generated, engine.tuples_delivered
        );
    }
}
