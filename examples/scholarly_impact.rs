//! The paper's introductory example: measuring scholarly impact on an
//! author-collaboration network.
//!
//! Authors are vertices and each co-authored paper is a hyperedge, so a
//! paper with five authors is one relationship — not ten pairwise edges.
//! The example builds a synthetic collaboration network, ranks authors with
//! hypergraph PageRank, and contrasts the result with PageRank on the
//! clique-expanded ordinary graph, where prolific large collaborations
//! drown out selective ones (the inaccuracy the paper's introduction
//! describes).
//!
//! ```text
//! cargo run --release --example scholarly_impact
//! ```

use chgraph::{ChGraphRuntime, HygraRuntime, RunConfig, Runtime};
use hyperalgos::PageRank;
use hypergraph::{Hypergraph, HypergraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NUM_AUTHORS: usize = 3_000;
const NUM_PAPERS: usize = 5_000;

/// Builds a synthetic collaboration network: research groups write runs of
/// papers with overlapping author subsets (exactly the "family" structure
/// real co-authorship exhibits), plus occasional cross-group papers.
fn collaboration_network(seed: u64) -> Hypergraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = HypergraphBuilder::new(NUM_AUTHORS);
    let mut papers = 0usize;
    while papers < NUM_PAPERS {
        // A group: a PI and their collaborators, clustered in id space.
        let group_size = rng.gen_range(3..=12);
        let base = rng.gen_range(0..(NUM_AUTHORS - group_size * 8) as u32);
        let members: Vec<u32> =
            (0..group_size).map(|_| base + rng.gen_range(0..(group_size * 8) as u32)).collect();
        let output = rng.gen_range(1..=20).min(NUM_PAPERS - papers);
        for _ in 0..output {
            // Each paper: the PI, a core subset, sometimes an external guest.
            let mut authors = vec![members[0]];
            for &m in &members[1..] {
                if rng.gen_bool(0.6) {
                    authors.push(m);
                }
            }
            if rng.gen_bool(0.2) {
                authors.push(rng.gen_range(0..NUM_AUTHORS as u32));
            }
            b.add_hyperedge(authors.into_iter().map(VertexId::new)).expect("valid paper");
            papers += 1;
        }
    }
    b.build()
}

/// Clique-expands the hypergraph into a 2-uniform one (every co-author pair
/// becomes an edge) — the lossy ordinary-graph representation.
fn clique_expand(g: &Hypergraph) -> Hypergraph {
    let mut b = HypergraphBuilder::new(g.num_vertices());
    let mut seen = std::collections::HashSet::new();
    for h in 0..g.num_hyperedges() as u32 {
        let vs = g.incidence(hypergraph::Side::Hyperedge, h);
        for (i, &a) in vs.iter().enumerate() {
            for &c in &vs[i + 1..] {
                let key = (a.min(c), a.max(c));
                if seen.insert(key) {
                    b.add_hyperedge([VertexId::new(key.0), VertexId::new(key.1)])
                        .expect("valid pair");
                }
            }
        }
    }
    b.build()
}

fn top_k(ranks: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut idx: Vec<usize> = (0..ranks.len()).collect();
    idx.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
    idx.into_iter().take(k).map(|i| (i, ranks[i])).collect()
}

fn main() {
    let g = collaboration_network(0xC0FFEE);
    println!(
        "collaboration network: {} authors, {} papers, {} authorships",
        g.num_vertices(),
        g.num_hyperedges(),
        g.num_bipartite_edges()
    );

    let cfg = RunConfig::new();
    let hyper = ChGraphRuntime::new().execute(&g, &PageRank::new(), &cfg);

    let clique = clique_expand(&g);
    println!(
        "clique expansion blows {} authorships up into {} pairwise edges",
        g.num_bipartite_edges(),
        clique.num_hyperedges()
    );
    let flat = HygraRuntime.execute(&clique, &PageRank::new(), &cfg);

    println!("\ntop authors by hypergraph PageRank (papers weighted once):");
    for (author, rank) in top_k(&hyper.state.vertex_value, 8) {
        println!("  author {author:>5}: {rank:.3e}");
    }
    println!("\ntop authors by clique-expanded PageRank (large collaborations inflated):");
    for (author, rank) in top_k(&flat.state.vertex_value, 8) {
        println!("  author {author:>5}: {rank:.3e}");
    }

    // How much do the two rankings disagree in their top-50?
    let top_h: std::collections::HashSet<usize> =
        top_k(&hyper.state.vertex_value, 50).into_iter().map(|(a, _)| a).collect();
    let top_c: std::collections::HashSet<usize> =
        top_k(&flat.state.vertex_value, 50).into_iter().map(|(a, _)| a).collect();
    let agree = top_h.intersection(&top_c).count();
    println!(
        "\ntop-50 agreement between the two models: {agree}/50 — the representations \
         genuinely rank impact differently"
    );
    println!(
        "hypergraph run: {} cycles on the simulated 16-core machine ({} DRAM accesses)",
        hyper.cycles,
        hyper.mem.main_memory_accesses()
    );
}
