//! The generality study (paper §VI-I): conventional graphs are 2-uniform
//! hypergraphs, so ChGraph runs ordinary graph workloads unmodified.
//!
//! Compares the index-ordered baseline ("Ligra" — exactly the special case
//! of Hygra on 2-uniform input), the HATS hardware traversal scheduler, and
//! ChGraph on SSSP and Adsorption over the com-Amazon / soc-Pokec stand-ins.
//!
//! ```text
//! cargo run --release --example ordinary_graphs
//! ```

use chgraph::{ChGraphRuntime, HatsVRuntime, HygraRuntime, RunConfig, Runtime};
use hyperalgos::{run_workload, Workload};
use hypergraph::datasets::GraphDataset;

fn main() {
    let cfg = RunConfig::new();
    println!(
        "{:<11} {:<6} {:<10} {:>13} {:>15} {:>9}",
        "workload", "graph", "system", "cycles", "dram accesses", "speedup"
    );
    for w in Workload::GRAPH {
        for gd in GraphDataset::ALL {
            let g = gd.load();
            let ligra = run_workload(w, &HygraRuntime, &g, &cfg);
            let systems: [(&str, &dyn Runtime); 3] = [
                ("Ligra", &HygraRuntime),
                ("HATS", &HatsVRuntime),
                ("ChGraph", &ChGraphRuntime::new()),
            ];
            for (label, rt) in systems {
                let r = run_workload(w, rt, &g, &cfg);
                println!(
                    "{:<11} {:<6} {:<10} {:>13} {:>15} {:>8.2}x",
                    w.abbrev(),
                    gd.abbrev(),
                    label,
                    r.cycles,
                    r.mem.main_memory_accesses(),
                    r.speedup_over(&ligra)
                );
            }
            println!();
        }
    }
    println!(
        "For 2-uniform inputs the OAG coincides with the input graph's \
         adjacency, so ChGraph degenerates gracefully to a HATS-class \
         traversal scheduler with a prefetcher (paper SVI-I)."
    );
}
