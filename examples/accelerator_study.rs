//! Design-space exploration of the ChGraph engine: sweep the chain depth
//! bound `D_max`, the OAG threshold `W_min`, and the FIFO capacity, and
//! report the best configuration alongside the hardware budget — the kind
//! of study an architect would run before freezing the RTL.
//!
//! ```text
//! cargo run --release --example accelerator_study
//! ```

use chgraph::engine::EngineCostModel;
use chgraph::{ChGraphRuntime, HygraRuntime, RunConfig, Runtime};
use hyperalgos::PageRank;
use hypergraph::datasets::Dataset;
use oag::{ChainConfig, OagConfig};

fn main() {
    let g = Dataset::LiveJournal.load();
    let pr = PageRank::new().with_iterations(5);
    let baseline = HygraRuntime.execute(&g, &pr, &RunConfig::new());
    println!(
        "LiveJournal stand-in, PR x5 iterations; Hygra baseline: {} cycles\n",
        baseline.cycles
    );

    println!(
        "{:<8} {:<8} {:<6} {:>12} {:>9} {:>11}",
        "D_max", "W_min", "FIFO", "cycles", "speedup", "dram redux"
    );
    let mut best: Option<(u64, String)> = None;
    for d_max in [4usize, 8, 16, 32] {
        for w_min in [1u32, 3, 5] {
            for fifo in [8usize, 32] {
                let mut cfg = RunConfig::new()
                    .with_chain(ChainConfig::new(d_max))
                    .with_oag(OagConfig::new().with_w_min(w_min));
                cfg.fifo_capacity = fifo;
                let r = ChGraphRuntime::new().execute(&g, &pr, &cfg);
                let line = format!(
                    "{:<8} {:<8} {:<6} {:>12} {:>8.2}x {:>10.2}x",
                    d_max,
                    w_min,
                    fifo,
                    r.cycles,
                    r.speedup_over(&baseline),
                    r.mem_reduction_over(&baseline)
                );
                println!("{line}");
                if best.as_ref().is_none_or(|(c, _)| r.cycles < *c) {
                    best = Some((r.cycles, format!("D_max={d_max}, W_min={w_min}, FIFO={fifo}")));
                }
            }
        }
    }

    let (cycles, config) = best.expect("sweep is nonempty");
    println!("\nbest configuration: {config} ({cycles} cycles)");

    let cost = EngineCostModel::paper();
    println!(
        "hardware budget at the paper's design point: {} B of engine storage, \
         {:.3} mm^2 ({:.2}% of a 65 nm core), {:.0} mW ({:.2}% of TDP)",
        cost.total_storage_bytes(),
        cost.area_mm2,
        cost.area_fraction_of_core() * 100.0,
        cost.power_mw,
        cost.power_fraction_of_tdp() * 100.0
    );
}
