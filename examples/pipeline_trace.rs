//! Stage-level trace of the ChGraph engine: run the cycle-stepped HCG and
//! CP reference models (paper §V-B) over one chunk and inspect throughput,
//! FIFO behaviour, and the decoupling between generation, prefetching, and
//! the core's apply rate.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```

use chgraph::engine::{CpModel, EngineCostModel, HcgModel};
use hypergraph::chunk::partition;
use hypergraph::{Frontier, Side};
use oag::quality::{chain_stats, chained_incidence_fraction};
use oag::OagConfig;

fn main() {
    let g = hypergraph::datasets::Dataset::LiveJournal.load();
    let oag = OagConfig::new().build(&g, Side::Hyperedge);
    let chunk = partition(&g, Side::Hyperedge, 16)[0];
    let frontier = Frontier::full(g.num_hyperedges());
    println!(
        "chunk 0 of 16: hyperedges {}..{} ({} elements), OAG degree {:.1}",
        chunk.first,
        chunk.last,
        chunk.len(),
        oag.num_edge_entries() as f64 / oag.len() as f64
    );

    // --- Hardware chain generator ---
    let hcg = HcgModel::default();
    let run = hcg.run(&oag, &frontier, chunk.first..chunk.last, 0);
    let stats = chain_stats(&run.chains);
    println!("\nHCG (4-stage pipeline, {}-deep stack):", hcg.stack_depth);
    println!(
        "  chains:            {} (mean len {:.1}, element-weighted {:.1})",
        stats.num_chains, stats.mean_len, stats.element_weighted_len
    );
    println!(
        "  cycles:            {} ({:.1}/element)",
        run.cycles,
        run.cycles as f64 / chunk.len() as f64
    );
    println!("  chain FIFO peak:   {} / {}", run.fifo_peak, hcg.fifo_capacity);
    println!(
        "  chained reuse:     {:.1}% of incident accesses covered by the predecessor",
        chained_incidence_fraction(&g, Side::Hyperedge, &run.chains) * 100.0
    );

    // --- Chain-driven prefetcher, against three core speeds ---
    println!("\nCP (4-stage pipeline, 32-entry bipartite-edge FIFO):");
    println!(
        "  {:>18} {:>12} {:>14} {:>16}",
        "core cyc/tuple", "CP cycles", "starved cyc", "back-pressure cyc"
    );
    for core_period in [1u64, 8, 64] {
        let cp = CpModel::default().run(
            &g,
            Side::Hyperedge,
            run.chains.schedule(),
            &run.emit_times,
            core_period,
        );
        println!(
            "  {:>18} {:>12} {:>14} {:>16}",
            core_period, cp.cycles, cp.chain_fifo_empty_stalls, cp.edge_fifo_full_stalls
        );
    }

    // --- Hardware budget ---
    let cost = EngineCostModel::paper();
    println!(
        "\nengine hardware: {} B storage, {:.3} mm^2, {:.0} mW (65 nm) — {:.2}% of a core",
        cost.total_storage_bytes(),
        cost.area_mm2,
        cost.power_mw,
        cost.area_fraction_of_core() * 100.0
    );
    println!(
        "a slow core back-pressures the CP through the edge FIFO; a slow HCG \
         starves it through the chain FIFO — the decoupled behaviour of Fig. 12."
    );
}
