//! The amortization story of §VI-G: preprocess once — build the bipartite
//! structure and both OAGs, cache them on disk in the binary formats — then
//! run many different algorithms against the cached artifacts.
//!
//! ```text
//! cargo run --release --example preprocessing_cache
//! ```

use chgraph::{ChGraphRuntime, RunConfig};
use hyperalgos::{run_workload, Workload};
use hypergraph::{Hypergraph, Side};
use oag::{Oag, OagConfig};
use std::io::BufReader;
use std::time::Instant;

fn cache_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("chgraph-cache");
    std::fs::create_dir_all(&dir).expect("create cache dir");
    dir
}

fn preprocess_and_cache() -> (Hypergraph, Oag, Oag, std::time::Duration) {
    let t0 = Instant::now();
    let g = hypergraph::datasets::Dataset::LiveJournal.load();
    let h_oag = OagConfig::new().build(&g, Side::Hyperedge);
    let v_oag = OagConfig::new().build(&g, Side::Vertex);
    let took = t0.elapsed();
    let dir = cache_dir();
    hypergraph::io::write_binary(&g, std::fs::File::create(dir.join("lj.chg")).unwrap())
        .expect("write hypergraph");
    oag::io::write_binary(&h_oag, std::fs::File::create(dir.join("lj.hoag")).unwrap())
        .expect("write H-OAG");
    oag::io::write_binary(&v_oag, std::fs::File::create(dir.join("lj.voag")).unwrap())
        .expect("write V-OAG");
    (g, h_oag, v_oag, took)
}

fn load_cached() -> (Hypergraph, Oag, Oag, std::time::Duration) {
    let dir = cache_dir();
    let t0 = Instant::now();
    let g = hypergraph::io::read_binary(BufReader::new(
        std::fs::File::open(dir.join("lj.chg")).unwrap(),
    ))
    .expect("read hypergraph");
    let h_oag =
        oag::io::read_binary(BufReader::new(std::fs::File::open(dir.join("lj.hoag")).unwrap()))
            .expect("read H-OAG");
    let v_oag =
        oag::io::read_binary(BufReader::new(std::fs::File::open(dir.join("lj.voag")).unwrap()))
            .expect("read V-OAG");
    (g, h_oag, v_oag, t0.elapsed())
}

fn main() {
    let (g, h_oag, v_oag, build_time) = preprocess_and_cache();
    println!(
        "preprocessed LiveJournal stand-in in {build_time:?}: {} hyperedges, \
         H-OAG {} edges, V-OAG {} edges",
        g.num_hyperedges(),
        h_oag.num_edge_entries(),
        v_oag.num_edge_entries()
    );

    let (g2, h2, v2, load_time) = load_cached();
    assert_eq!(g, g2);
    assert_eq!(h_oag, h2);
    assert_eq!(v_oag, v2);
    println!(
        "reloaded all three artifacts from the binary cache in {load_time:?} \
         ({:.0}x faster than rebuilding)",
        build_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9)
    );

    // One preprocessing, many algorithms (the paper's amortization claim).
    let cfg = RunConfig::new();
    let runtime = ChGraphRuntime::new();
    println!("\nrunning the whole workload suite against the cached input:");
    for w in Workload::HYPERGRAPH {
        let t0 = Instant::now();
        let r = run_workload(w, &runtime, &g2, &cfg);
        println!(
            "  {:<7} {:>12} simulated cycles, {:>9} DRAM accesses  (host {:?})",
            w.abbrev(),
            r.cycles,
            r.mem.main_memory_accesses(),
            t0.elapsed()
        );
    }
    println!(
        "\nthe OAG build cost is paid once; every execution above reuses it \
         (paper SVI-G: overheads amortized across algorithms)."
    );
}
