//! Vendored offline stub of `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! on config/report types — nothing serializes through serde at runtime
//! (the on-disk formats in `hypergraph::io` / `oag::io` are hand-rolled
//! binary). This stub keeps those derives compiling without network access:
//! the traits are empty markers and the derive macros expand to marker
//! impls.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
