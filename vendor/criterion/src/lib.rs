//! Vendored offline mini-criterion.
//!
//! API-compatible with the slice of `criterion` 0.5 the workspace's bench
//! files use (`benchmark_group`, `bench_with_input`, `bench_function`,
//! `BenchmarkId`, `Throughput`, `b.iter`, `criterion_group!`,
//! `criterion_main!`). Instead of criterion's statistical machinery it
//! runs a warm-up pass, then times batches until the measurement window
//! or the sample budget is exhausted, and reports mean time per
//! iteration. Good enough to compare serial vs. parallel builds on the
//! same machine; not a substitute for real criterion statistics.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation (recorded, reported as elements/sec when set).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-iteration timer handed to the bench closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Mean seconds per iteration, filled by `iter`.
    mean_secs: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: time iterations until the window closes or the
        // sample budget is reached, whichever is later bounded below by
        // one iteration.
        let budget = self.sample_size.max(1) as u64;
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_time || iters >= budget {
                self.mean_secs = elapsed.as_secs_f64() / iters as f64;
                self.iters = iters;
                break;
            }
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b, input));
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, label);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            mean_secs: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        let mut line = format!(
            "{full: <48} time: {: >12}   ({} iters)",
            format_time(bencher.mean_secs),
            bencher.iters
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            if bencher.mean_secs > 0.0 {
                let rate = n as f64 / bencher.mean_secs;
                line.push_str(&format!("   thrpt: {rate:.0} elem/s"));
            }
        }
        println!("{line}");
    }

    pub fn finish(self) {}
}

/// Entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter after harness flags;
        // ignore criterion/libtest-style options (anything with a dash).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            throughput: None,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group("criterion");
        group.run(&id.label, |b| f(b));
        group.finish();
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
