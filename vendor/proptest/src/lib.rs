//! Vendored offline mini-proptest.
//!
//! The build container has no network access, so this crate reimplements
//! the slice of the `proptest` 1.x API the workspace's property tests use:
//! the `proptest!` macro, `Strategy` with `prop_map`/`prop_flat_map`,
//! integer-range and tuple strategies, `Just`, `any::<bool>()`,
//! `prop::bool::ANY`, `prop::collection::vec`, `ProptestConfig::with_cases`,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, on purpose:
//! - **Deterministic seeding.** Cases are seeded from an FNV-1a hash of the
//!   test's module path and name plus the case index, so a failure
//!   reproduces on every run and on every machine. (Real proptest draws
//!   entropy and persists regressions; a seed file is useless offline.)
//! - **No shrinking.** A failing case panics immediately with the assert
//!   message; the deterministic seed makes the case replayable under a
//!   debugger instead.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Just, Strategy};

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    pub const ANY: BoolAny = BoolAny;

    impl crate::Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut crate::TestRng) -> bool {
            use rand::Rng;
            rng.gen::<bool>()
        }
    }
}

/// The `prop` alias module exposed by proptest's prelude
/// (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies. A concrete type keeps `Strategy`
/// object-safe-free and simple.
pub type TestRng = SmallRng;

#[doc(hidden)]
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

#[doc(hidden)]
pub fn case_rng(base: u64, case: u64) -> TestRng {
    SmallRng::seed_from_u64(base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// The `proptest!` macro: expands each `fn name(arg in strategy, ...)` into
/// a `#[test]` that samples every strategy `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut proptest_rng = $crate::case_rng(base, case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( fn $name($($arg in $strat),*) $body )*
        }
    };
}

/// `prop_assert!` — panics on failure (no shrinking, see crate docs).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `prop_assert_eq!` — panics on failure (no shrinking, see crate docs).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeding_is_deterministic() {
        use crate::Strategy;
        let s = (0u32..1000, prop::bool::ANY);
        let a: Vec<(u32, bool)> = (0..8).map(|c| s.sample(&mut crate::case_rng(1, c))).collect();
        let b: Vec<(u32, bool)> = (0..8).map(|c| s.sample(&mut crate::case_rng(1, c))).collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_compose(
            n in 1usize..10,
            items in prop::collection::vec((0u64..64, any::<bool>()), 0..20),
            label in (0u32..5).prop_map(|x| x * 10),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(items.len() < 20);
            for (v, _) in &items {
                prop_assert!(*v < 64);
            }
            prop_assert_eq!(label % 10, 0);
        }

        #[test]
        fn flat_map_sees_outer_value(
            pair in (2usize..9).prop_flat_map(|n| (Just(n), prop::collection::vec(0usize..n, 1..5)))
        ) {
            let (n, xs) = pair;
            for x in xs {
                prop_assert!(x < n);
            }
        }
    }
}
