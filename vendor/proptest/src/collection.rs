//! `prop::collection` subset: `vec`.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::ops::Range;

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element, size_range)` — a vector whose length is
/// drawn from `size` and whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
