//! `Strategy` trait and combinators (vendored mini-proptest).

use crate::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: `sample`
/// draws one value directly from the RNG.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.start..self.end)
                }
            }
        )*
    };
}

range_strategy!(u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.gen::<u32>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen::<u64>()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.gen::<usize>()
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
