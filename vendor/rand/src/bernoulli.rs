//! Bernoulli distribution, bit-compatible with rand 0.8.5.

use crate::RngCore;

const ALWAYS_TRUE: u64 = u64::MAX;
// 2^64 as f64 (rand writes this as `2.0 * (1u64 << 63) as f64`).
const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

pub struct Bernoulli {
    p_int: u64,
}

impl Bernoulli {
    pub fn new(p: f64) -> Result<Bernoulli, ()> {
        if !(0.0..1.0).contains(&p) {
            if p == 1.0 {
                return Ok(Bernoulli { p_int: ALWAYS_TRUE });
            }
            return Err(());
        }
        Ok(Bernoulli { p_int: (p * SCALE) as u64 })
    }

    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p_int == ALWAYS_TRUE {
            return true;
        }
        rng.next_u64() < self.p_int
    }
}
