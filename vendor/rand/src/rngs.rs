//! `rand::rngs` subset: `SmallRng` only.

use crate::{RngCore, SeedableRng};

/// Xoshiro256++ — the 64-bit `SmallRng` of rand 0.8, bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        if seed.iter().all(|&b| b == 0) {
            // rand 0.8 remaps the all-zero seed (xoshiro's one forbidden
            // state) through seed_from_u64(0).
            return Self::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (w, chunk) in s.iter_mut().zip(seed.chunks(8)) {
            *w = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        // rand 0.8 derives u32 draws from the high half of next_u64.
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let n = rest.len();
            rest.copy_from_slice(&self.next_u64().to_le_bytes()[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xoshiro256++ reference vector: seed words 1,2,3,4, first three
    /// outputs from the canonical C implementation.
    #[test]
    fn xoshiro256plusplus_reference_vector() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        // First output: rotl(s0 + s3, 23) + s0 = rotl(5, 23) + 1.
        assert_eq!(rng.next_u64(), (5u64 << 23) + 1);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let a = SmallRng::from_seed([0u8; 32]);
        let b = SmallRng::seed_from_u64(0);
        assert_eq!(a, b);
        assert_ne!(a.s, [0u64; 4]);
    }
}
