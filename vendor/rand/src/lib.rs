//! Vendored offline subset of `rand` 0.8.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the narrow slice of the `rand` API it actually uses.
//! The implementation is **bit-compatible** with rand 0.8.5 for that slice:
//!
//! - `SmallRng` is xoshiro256++ (the 64-bit `SmallRng` of rand 0.8),
//! - `SeedableRng::seed_from_u64` is the SplitMix64 expansion rand uses,
//! - `Rng::gen_range` reproduces `UniformInt` (widening-multiply with zone
//!   rejection) and `UniformFloat` (53-bit mantissa into `[1, 2)`) sampling,
//! - `Rng::gen_bool` reproduces the `Bernoulli` fixed-point comparison.
//!
//! Bit-compatibility matters because the dataset generators in
//! `crates/hypergraph` are calibrated against the shape tests and the figure
//! harness promises bit-for-bit reproducible output: swapping in a different
//! generator stream would silently change every figure.

pub mod rngs;

mod bernoulli;
mod uniform;

pub use uniform::SampleRange;

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// SplitMix64 expansion of a `u64` seed, exactly as rand 0.8 does it.
    fn seed_from_u64(mut state: u64) -> Self {
        // Constants from rand_core 0.6 `seed_from_u64`.
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z = z ^ (z >> 31);
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range, matching rand 0.8's
    /// `UniformSampler::sample_single{,_inclusive}`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: uniform::SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw, matching rand 0.8's `Bernoulli` distribution.
    fn gen_bool(&mut self, p: f64) -> bool {
        bernoulli::Bernoulli::new(p).expect("gen_bool: probability outside [0, 1]").sample(self)
    }

    /// Sample a value of a primitive type from the full range
    /// (rand's `Standard` distribution, integer/bool subset).
    fn gen<T: uniform::StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    /// SplitMix64 with initial state 0 — reference vector from the
    /// canonical splitmix64.c test suite. This pins the seed expansion
    /// rand 0.8 uses for `seed_from_u64`.
    #[test]
    fn splitmix64_reference_vector() {
        struct Capture([u8; 32]);
        impl AsMut<[u8]> for Capture {
            fn as_mut(&mut self) -> &mut [u8] {
                &mut self.0
            }
        }
        impl Default for Capture {
            fn default() -> Self {
                Capture([0; 32])
            }
        }
        struct Probe(Capture);
        impl SeedableRng for Probe {
            type Seed = Capture;
            fn from_seed(seed: Capture) -> Self {
                Probe(seed)
            }
        }
        impl crate::RngCore for Probe {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
            fn fill_bytes(&mut self, _: &mut [u8]) {}
        }
        let p = Probe::seed_from_u64(0);
        let words: Vec<u64> =
            p.0 .0.chunks(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(
            words,
            vec![
                0xe220_a839_7b1d_cdaf,
                0x6e78_9e6a_a1b9_65f4,
                0x06c4_5d18_8009_454f,
                0xf88b_b8a8_724c_81ec,
            ]
        );
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.gen_range(0.5..=1.0);
            assert!((0.5..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        assert!((0..64).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
