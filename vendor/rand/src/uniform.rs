//! Uniform range sampling, bit-compatible with rand 0.8.5's
//! `UniformInt`/`UniformFloat` single-sample paths.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// `rand::distributions::Standard` subset: full-range primitive draws.
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 draws usize as u64 on 64-bit targets (u32 on 32-bit).
        #[cfg(target_pointer_width = "64")]
        {
            rng.next_u64() as usize
        }
        #[cfg(not(target_pointer_width = "64"))]
        {
            rng.next_u32() as usize
        }
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Sign test on the high bit, as in rand 0.8.
        (rng.next_u32() as i32) < 0
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit mantissa into [0, 1) — rand's `Standard` for f64.
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

/// Types that `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument to `Rng::gen_range` (subset of rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_single_inclusive(low, high, rng)
    }
}

/// Widening-multiply with zone rejection — the exact `UniformInt` algorithm
/// for types whose "large" sampling width equals their own width (u32, u64,
/// usize on 64-bit), which is all this workspace uses.
macro_rules! uniform_int_impl {
    ($ty:ty, $wide:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "gen_range: low >= high");
                let range = high.wrapping_sub(low);
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $ty = StandardSample::standard_sample(rng);
                    let m = (v as $wide) * (range as $wide);
                    let hi = (m >> <$ty>::BITS) as $ty;
                    let lo = m as $ty;
                    if lo <= zone {
                        return low.wrapping_add(hi);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                assert!(low <= high, "gen_range: low > high (inclusive)");
                let range = high.wrapping_sub(low).wrapping_add(1);
                if range == 0 {
                    // Span covers the whole type.
                    return StandardSample::standard_sample(rng);
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $ty = StandardSample::standard_sample(rng);
                    let m = (v as $wide) * (range as $wide);
                    let hi = (m >> <$ty>::BITS) as $ty;
                    let lo = m as $ty;
                    if lo <= zone {
                        return low.wrapping_add(hi);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u32, u64);
uniform_int_impl!(u64, u128);
#[cfg(target_pointer_width = "64")]
uniform_int_impl!(usize, u128);
#[cfg(not(target_pointer_width = "64"))]
uniform_int_impl!(usize, u64);

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        // rand 0.8 `UniformFloat::<f64>::sample_single`.
        assert!(low < high, "gen_range: low >= high");
        let mut scale = high - low;
        assert!(scale.is_finite(), "gen_range: range overflowed to infinity");
        loop {
            // 52 mantissa bits into [1, 2), then shift to [0, 1).
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
            // Shrink scale by one ulp to escape rounding onto `high`.
            scale = f64::from_bits(scale.to_bits().wrapping_sub(1));
        }
    }

    fn sample_single_inclusive<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        // rand 0.8 `UniformFloat::<f64>::new_inclusive` + `sample`.
        assert!(low <= high, "gen_range: low > high (inclusive)");
        let max_rand = f64::from_bits((u64::MAX >> 12) | (1023u64 << 52)) - 1.0;
        let mut scale = (high - low) / max_rand;
        assert!(scale.is_finite(), "gen_range: range overflowed to infinity");
        while scale * max_rand + low > high {
            scale = f64::from_bits(scale.to_bits().wrapping_sub(1));
        }
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        let value0_1 = value1_2 - 1.0;
        value0_1 * scale + low
    }
}
