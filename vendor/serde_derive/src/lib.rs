//! No-op `Serialize`/`Deserialize` derives for the vendored serde stub.
//!
//! The derives expand to nothing: no code in this workspace requires the
//! `Serialize`/`Deserialize` bounds, the attribute is purely declarative.
//! `attributes(serde)` is declared so `#[serde(...)]` field attributes
//! would still parse if a future change adds them.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
